"""Figure 1: the pipeline's stage flow, regenerated as per-stage counts.

The paper's Figure 1 is the architecture diagram (schema matching → row
clustering → entity creation → new detection, two iterations with
feedback).  This harness reruns the pipeline and reports what flows
through each stage per iteration — the data behind the diagram.
"""

from __future__ import annotations

from repro.experiments.env import CLASSES, ExperimentEnv, get_env
from repro.experiments.report import ExperimentTable
from repro.newdetect.detector import Classification


def run(env: ExperimentEnv | None = None) -> ExperimentTable:
    env = env or get_env()
    table = ExperimentTable(
        exp_id="Figure 1",
        title="Pipeline stage flow (artifacts per stage and iteration)",
        header=(
            "Class", "Iter", "MatchedTables", "MatchedAttrs", "Rows",
            "Clusters", "Entities", "New", "Existing", "Ambiguous",
        ),
        notes=[
            "iteration 2 consumes iteration 1's clusters and "
            "correspondences to refine the schema mapping (Figure 1 loop)",
        ],
    )
    for class_name, display in CLASSES:
        result = env.profiling_run(class_name)
        for artifacts in result.iterations:
            mapping = artifacts.mapping
            class_names = env.world.knowledge_base.schema.descendants(class_name)
            matched_tables = [
                table_id
                for name in class_names
                for table_id in mapping.tables_of_class(name)
            ]
            matched_attrs = sum(
                len(mapping.table(table_id).attributes)
                for table_id in matched_tables
            )
            classifications = artifacts.detection.classifications
            def count(kind: Classification) -> int:
                return sum(
                    1 for value in classifications.values() if value is kind
                )
            table.rows.append(
                (
                    display,
                    artifacts.iteration,
                    len(matched_tables),
                    matched_attrs,
                    len(artifacts.records),
                    len(artifacts.clusters),
                    len(artifacts.entities),
                    count(Classification.NEW),
                    count(Classification.EXISTING),
                    count(Classification.AMBIGUOUS),
                )
            )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
