"""Table 8: new detection ablation over cumulative metric sets.

New detection is evaluated on entities created from the *gold* clusters
(as in the paper): for each cumulative metric set an aggregator is trained
on the learning folds' entities and evaluated on the held-out fold's.
"""

from __future__ import annotations

from collections import defaultdict

from repro.clustering.context import RowMetricContext
from repro.experiments.env import CLASSES, ExperimentEnv, get_env
from repro.experiments.report import ExperimentTable
from repro.fusion.fuser import EntityCreator
from repro.fusion.scoring import make_scorer
from repro.newdetect.candidates import CandidateSelector
from repro.newdetect.detector import EntityInstanceSimilarity, NewDetector
from repro.newdetect.evaluation import evaluate_detection
from repro.newdetect.metrics import ENTITY_METRIC_NAMES, make_entity_metrics
from repro.newdetect.training import (
    build_entity_training_pairs,
    learn_thresholds,
    train_entity_similarity,
)
from repro.pipeline.gold_utils import gold_clusters_to_row_clusters, records_from_gold

#: Paper values per cumulative set: (ACC, F1-existing, F1-new, MI).
PAPER = {
    "LABEL": (0.69, 0.66, 0.67, 0.20),
    "+ TYPE": (0.79, 0.75, 0.82, 0.26),
    "+ BOW": (0.85, 0.84, 0.83, 0.17),
    "+ ATTRIBUTE": (0.85, 0.86, 0.84, 0.20),
    "+ IMPLICIT_ATT": (0.88, 0.87, 0.89, 0.11),
    "+ POPULARITY": (0.89, 0.88, 0.88, 0.06),
}

FOLDS = (0, 1, 2)


def _cumulative_sets() -> list[tuple[str, tuple[str, ...]]]:
    sets = []
    for position in range(1, len(ENTITY_METRIC_NAMES) + 1):
        names = ENTITY_METRIC_NAMES[:position]
        label = names[0] if position == 1 else f"+ {names[-1]}"
        sets.append((label, names))
    return sets


def _entities_and_truth(env: ExperimentEnv, class_name: str, gold):
    """Entities from gold clusters, plus gold truth maps and context."""
    kb = env.world.knowledge_base
    records = records_from_gold(env.world.corpus, gold, kb)
    context = RowMetricContext.build(kb, class_name, records)
    clusters = gold_clusters_to_row_clusters(gold, records)
    creator = EntityCreator(kb, class_name, make_scorer("voting"))
    entities = creator.create(clusters)
    truth_is_new = {}
    truth_uri = {}
    for cluster in gold.clusters:
        entity_id = f"e:{cluster.cluster_id}"
        truth_is_new[entity_id] = cluster.is_new
        if cluster.kb_uri is not None:
            truth_uri[entity_id] = cluster.kb_uri
    return entities, truth_is_new, truth_uri, context


def run(env: ExperimentEnv | None = None, folds=FOLDS) -> ExperimentTable:
    env = env or get_env()
    kb = env.world.knowledge_base
    table = ExperimentTable(
        exp_id="Table 8",
        title="New detection ablation (cumulative metric sets)",
        header=("Run", "ACC", "F1Existing", "F1New", "MI", "Paper(ACC/F1E/F1N/MI)"),
    )
    aggregates: dict[str, list[float]] = defaultdict(lambda: [0.0, 0.0, 0.0])
    importance_sums: dict[str, float] = defaultdict(float)
    importance_count = 0
    runs = 0
    for class_name, __ in CLASSES:
        for fold in folds:
            train_gold, test_gold = env.fold_golds(class_name, fold)
            train_entities, train_is_new, train_uri, train_context = (
                _entities_and_truth(env, class_name, train_gold)
            )
            test_entities, test_is_new, test_uri, test_context = (
                _entities_and_truth(env, class_name, test_gold)
            )
            selector = CandidateSelector(kb)
            pairs = build_entity_training_pairs(
                train_entities, train_uri, selector, seed=env.seed + fold
            )
            runs += 1
            for label, names in _cumulative_sets():
                train_metrics = make_entity_metrics(
                    names, kb, class_name, train_context.implicit_by_table
                )
                similarity = train_entity_similarity(
                    train_metrics, pairs, seed=env.seed + fold
                )
                new_threshold, existing_threshold = learn_thresholds(
                    similarity, selector, train_entities, train_is_new, train_uri
                )
                test_metrics = make_entity_metrics(
                    names, kb, class_name, test_context.implicit_by_table
                )
                detector = NewDetector(
                    selector,
                    EntityInstanceSimilarity(test_metrics, similarity.aggregator),
                    new_threshold,
                    existing_threshold,
                )
                result = detector.detect(test_entities)
                scores = evaluate_detection(result, test_is_new, test_uri)
                aggregates[label][0] += scores.accuracy
                aggregates[label][1] += scores.f1_existing
                aggregates[label][2] += scores.f1_new
                if len(names) == len(ENTITY_METRIC_NAMES):
                    for name, value in (
                        similarity.aggregator.metric_importances().items()
                    ):
                        importance_sums[name] += value
                    importance_count += 1

    for label, names in _cumulative_sets():
        accuracy, f1_existing, f1_new = (
            value / runs for value in aggregates[label]
        )
        added = names[-1]
        importance = (
            importance_sums[added] / importance_count if importance_count else 0.0
        )
        paper = PAPER[label]
        table.rows.append(
            (
                label,
                round(accuracy, 3),
                round(f1_existing, 3),
                round(f1_new, 3),
                round(importance, 3),
                f"{paper[0]}/{paper[1]}/{paper[2]}/{paper[3]}",
            )
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
