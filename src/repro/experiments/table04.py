"""Table 4: tables and value correspondences per class.

Matches the full corpus with the (fully trained) schema matcher and
counts, per class: matched tables (class + at least one attribute), values
matched to existing instances, and values left unmatched — the paper's
profile of how much of the corpus overlaps the knowledge base.
"""

from __future__ import annotations

from repro.experiments.env import CLASSES, ExperimentEnv, get_env
from repro.experiments.report import ExperimentTable
from repro.fusion.scoring import exact_row_instances

#: Paper values: (tables, matched values, unmatched values).
PAPER = {
    "GF-Player": (10_432, 206_847, 35_968),
    "Song": (58_594, 1_315_381, 443_194),
    "Settlement": (11_757, 82_816, 13_735),
}


def run(env: ExperimentEnv | None = None) -> ExperimentTable:
    env = env or get_env()
    world = env.world
    table = ExperimentTable(
        exp_id="Table 4",
        title="Tables and value correspondences for selected classes",
        header=(
            "Class", "Tables", "VMatched", "VUnmatched",
            "Paper-T", "Paper-VM", "Paper-VU",
        ),
        notes=["values matched = cells of instance-matched rows in matched columns"],
    )
    for class_name, display in CLASSES:
        result = env.profiling_run(class_name)
        mapping = result.final.mapping
        table_ids = [
            table_id
            for name in world.knowledge_base.schema.descendants(class_name)
            for table_id in mapping.tables_of_class(name)
        ]
        row_instance = exact_row_instances(
            world.corpus, mapping, world.knowledge_base, class_name, table_ids
        )
        matched_values = 0
        unmatched_values = 0
        for table_id in table_ids:
            web_table = world.corpus.get(table_id)
            table_mapping = mapping.table(table_id)
            matched_columns = set(table_mapping.attributes)
            for row in web_table.iter_rows():
                row_matched = row.row_id in row_instance
                for column in range(web_table.n_columns):
                    if column == table_mapping.label_column:
                        continue
                    if row.cell(column) is None:
                        continue
                    if column in matched_columns and row_matched:
                        matched_values += 1
                    else:
                        unmatched_values += 1
        paper_tables, paper_matched, paper_unmatched = PAPER[display]
        table.rows.append(
            (
                display, len(table_ids), matched_values, unmatched_values,
                paper_tables, paper_matched, paper_unmatched,
            )
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
