"""Plain-text experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class ExperimentTable:
    """One regenerated paper table."""

    exp_id: str
    title: str
    header: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        return format_table(
            f"{self.exp_id}: {self.title}", self.header, self.rows, self.notes
        )


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] | None = None,
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(name) for name in header]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(name.ljust(widths[i]) for i, name in enumerate(header)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    for note in notes or ():
        lines.append(f"note: {note}")
    return "\n".join(lines)
