"""Table 6: attribute-to-property matching performance by iteration.

Trained on two folds, evaluated on the held-out fold (the paper's 2/3
learning split); the pipeline runs three iterations and each iteration's
mapping is scored against the gold attribute annotations.  Also reports
the learned iteration-2 matcher weights (the paper's weight analysis).
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.env import CLASSES, ExperimentEnv, get_env
from repro.experiments.report import ExperimentTable
from repro.goldstandard.annotations import LABEL_COLUMN
from repro.matching.learning import evaluate_attribute_matching

#: Paper values per iteration: (P, R, F1).
PAPER = {1: (0.929, 0.608, 0.735), 2: (0.924, 0.916, 0.920), 3: (0.929, 0.916, 0.922)}

TEST_FOLD = 2


def run(env: ExperimentEnv | None = None) -> ExperimentTable:
    env = env or get_env()
    table = ExperimentTable(
        exp_id="Table 6",
        title="Attribute-to-property matching performance by iteration",
        header=("Iteration", "P", "R", "F1", "Paper(P/R/F1)"),
    )
    sums: dict[int, list[float]] = defaultdict(lambda: [0.0, 0.0, 0.0])
    weight_sums: dict[str, float] = defaultdict(float)
    for class_name, __ in CLASSES:
        result = env.fold_run(class_name, TEST_FOLD)
        __, test_gold = env.fold_golds(class_name, TEST_FOLD)
        actual = {
            key: value
            for key, value in test_gold.attribute_correspondences.items()
            if value != LABEL_COLUMN
        }
        test_tables = set(test_gold.table_ids)
        for artifacts in result.iterations:
            predicted = {
                (correspondence.table_id, correspondence.column):
                    correspondence.property_name
                for correspondence in artifacts.mapping.all_correspondences()
                if correspondence.table_id in test_tables
            }
            scores = evaluate_attribute_matching(predicted, actual)
            sums[artifacts.iteration][0] += scores.precision
            sums[artifacts.iteration][1] += scores.recall
            sums[artifacts.iteration][2] += scores.f1
        model = env.fold_models(class_name, TEST_FOLD).schema_models
        for name, weight in model.second_iteration[class_name].weights.items():
            weight_sums[name] += weight
    n_classes = len(CLASSES)
    for iteration in sorted(sums):
        precision, recall, f1 = (value / n_classes for value in sums[iteration])
        paper = PAPER.get(iteration, ("-", "-", "-"))
        table.rows.append(
            (
                iteration,
                round(precision, 3),
                round(recall, 3),
                round(f1, 3),
                f"{paper[0]}/{paper[1]}/{paper[2]}",
            )
        )
    average_weights = {
        name: round(total / n_classes, 3) for name, total in weight_sums.items()
    }
    table.notes.append(f"avg learned iteration-2 weights: {average_weights}")
    table.notes.append(
        "paper weight analysis: KB-Duplicate 0.25, WT-Label 0.25, KB-Overlap 0.10"
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
