"""Table 9: new instances found evaluation.

Two configurations per class, as in the paper: gold clustering + learned
new detection (isolates detection errors), and learned clustering +
learned detection (the full system).  Scores are averaged over the three
cross-validation folds.
"""

from __future__ import annotations

from repro.clustering.context import RowMetricContext
from repro.experiments.env import CLASSES, ExperimentEnv, get_env
from repro.experiments.report import ExperimentTable
from repro.fusion.fuser import EntityCreator
from repro.fusion.scoring import make_scorer
from repro.newdetect.candidates import CandidateSelector
from repro.newdetect.detector import EntityInstanceSimilarity, NewDetector
from repro.newdetect.metrics import ENTITY_METRIC_NAMES, make_entity_metrics
from repro.pipeline.evaluation import evaluate_new_instances_found
from repro.pipeline.gold_utils import gold_clusters_to_row_clusters

#: Paper values: {(class, clustering): (P, R, F1)}.
PAPER = {
    ("GF-Player", "GS"): (0.89, 0.95, 0.91),
    ("GF-Player", "ALL"): (0.82, 0.95, 0.87),
    ("Song", "GS"): (0.92, 0.88, 0.90),
    ("Song", "ALL"): (0.72, 0.72, 0.72),
    ("Settlement", "GS"): (0.84, 0.90, 0.87),
    ("Settlement", "ALL"): (0.74, 0.87, 0.80),
}
PAPER_AVERAGE = (0.76, 0.85, 0.80)

FOLDS = (0, 1, 2)


def _detect_on_gold_clusters(env: ExperimentEnv, class_name: str, fold: int):
    """GS clustering + learned detection for one fold."""
    kb = env.world.knowledge_base
    __, test_gold = env.fold_golds(class_name, fold)
    artifacts = env.fold_run(class_name, fold).iterations[1]
    records = artifacts.records
    clusters = gold_clusters_to_row_clusters(test_gold, records)
    creator = EntityCreator(kb, class_name, make_scorer("voting"))
    entities = creator.create(clusters)
    context = RowMetricContext.build(kb, class_name, records)
    models = env.fold_models(class_name, fold)
    detector = NewDetector(
        CandidateSelector(kb),
        EntityInstanceSimilarity(
            make_entity_metrics(
                ENTITY_METRIC_NAMES, kb, class_name, context.implicit_by_table
            ),
            models.entity_aggregator,
        ),
        models.new_threshold,
        models.existing_threshold,
    )
    return entities, detector.detect(entities), test_gold


def run(env: ExperimentEnv | None = None, folds=FOLDS) -> ExperimentTable:
    env = env or get_env()
    table = ExperimentTable(
        exp_id="Table 9",
        title="New instances found evaluation",
        header=("Class", "Clust.", "NewDet.", "P", "R", "F1", "Paper(P/R/F1)"),
    )
    average = [0.0, 0.0, 0.0]
    for class_name, display in CLASSES:
        for clustering in ("GS", "ALL"):
            sums = [0.0, 0.0, 0.0]
            for fold in folds:
                if clustering == "GS":
                    entities, detection, test_gold = _detect_on_gold_clusters(
                        env, class_name, fold
                    )
                else:
                    __, test_gold = env.fold_golds(class_name, fold)
                    artifacts = env.fold_run(class_name, fold).iterations[1]
                    entities, detection = artifacts.entities, artifacts.detection
                scores = evaluate_new_instances_found(entities, detection, test_gold)
                sums[0] += scores.precision
                sums[1] += scores.recall
                sums[2] += scores.f1
            precision, recall, f1 = (value / len(folds) for value in sums)
            paper = PAPER[(display, clustering)]
            table.rows.append(
                (
                    display, clustering, "ALL",
                    round(precision, 3), round(recall, 3), round(f1, 3),
                    f"{paper[0]}/{paper[1]}/{paper[2]}",
                )
            )
            if clustering == "ALL":
                average[0] += precision
                average[1] += recall
                average[2] += f1
    table.rows.append(
        (
            "Average", "ALL", "ALL",
            round(average[0] / len(CLASSES), 3),
            round(average[1] / len(CLASSES), 3),
            round(average[2] / len(CLASSES), 3),
            f"{PAPER_AVERAGE[0]}/{PAPER_AVERAGE[1]}/{PAPER_AVERAGE[2]}",
        )
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
