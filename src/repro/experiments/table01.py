"""Table 1: number of instances and facts for the selected classes."""

from __future__ import annotations

from repro.experiments.env import CLASSES, ExperimentEnv, get_env
from repro.experiments.report import ExperimentTable
from repro.kb.profiling import class_profile

#: Paper values for shape comparison (DBpedia 2014, unscaled).
PAPER = {
    "GF-Player": (20_751, 137_319),
    "Song": (52_533, 315_414),
    "Settlement": (468_986, 1_444_316),
}


def run(env: ExperimentEnv | None = None) -> ExperimentTable:
    env = env or get_env()
    table = ExperimentTable(
        exp_id="Table 1",
        title="Number of instances and facts for selected KB classes",
        header=("Class", "Instances", "Facts", "Paper-Instances", "Paper-Facts"),
        notes=[
            "synthetic KB is scaled; compare facts-per-instance and ordering",
        ],
    )
    for class_name, display in CLASSES:
        profile = class_profile(env.world.knowledge_base, class_name)
        paper_instances, paper_facts = PAPER[display]
        table.rows.append(
            (display, profile.instances, profile.facts, paper_instances, paper_facts)
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
