"""Table 12: property densities for new entities from the full run."""

from __future__ import annotations

from repro.experiments.env import CLASSES, ExperimentEnv, get_env
from repro.experiments.report import ExperimentTable
from repro.pipeline.profiling import profile_class_run

#: Paper densities of new entities, for shape comparison.
PAPER = {
    ("GF-Player", "position"): 0.6582, ("GF-Player", "team"): 0.5462,
    ("GF-Player", "college"): 0.4898, ("GF-Player", "weight"): 0.4230,
    ("GF-Player", "height"): 0.3042, ("GF-Player", "number"): 0.2110,
    ("GF-Player", "birthDate"): 0.1814, ("GF-Player", "draftPick"): 0.1719,
    ("GF-Player", "draftRound"): 0.1100, ("GF-Player", "draftYear"): 0.0276,
    ("GF-Player", "birthPlace"): 0.0090,
    ("Song", "musicalArtist"): 0.7684, ("Song", "runtime"): 0.6186,
    ("Song", "album"): 0.2817, ("Song", "releaseDate"): 0.2534,
    ("Song", "genre"): 0.1274, ("Song", "recordLabel"): 0.0550,
    ("Song", "writer"): 0.0014,
    ("Settlement", "isPartOf"): 0.5012, ("Settlement", "postalCode"): 0.2785,
    ("Settlement", "country"): 0.2137, ("Settlement", "populationTotal"): 0.2106,
    ("Settlement", "elevation"): 0.0179,
}


def run(env: ExperimentEnv | None = None) -> ExperimentTable:
    env = env or get_env()
    table = ExperimentTable(
        exp_id="Table 12",
        title="Property densities for new entities (full run)",
        header=("Class", "Property", "Facts", "Density", "Paper-Density"),
        notes=[
            "shape target: table-frequent properties (position, team, "
            "artist, runtime, isPartOf) dense; person/detail properties "
            "(birthDate, birthPlace, writer) sparse — inverted vs Table 2",
        ],
    )
    for class_name, display in CLASSES:
        result = env.profiling_run(class_name)
        profile = profile_class_run(env.world, result, seed=env.seed + 99)
        for row in profile.densities:
            paper = PAPER.get((display, row.property_name))
            table.rows.append(
                (
                    display,
                    row.property_name,
                    row.facts,
                    f"{row.density:.2%}",
                    f"{paper:.2%}" if paper is not None else "-",
                )
            )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
