"""The queryable knowledge base store."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.index import LabelIndex, LabelMatch
from repro.kb.instance import KBInstance
from repro.kb.schema import KBSchema
from repro.text.tokenize import normalize_label


class KnowledgeBase:
    """Instances + schema with the lookups the pipeline needs.

    Responsibilities:

    * instance storage and per-class listing (with subclass expansion),
    * label-based candidate retrieval through a :class:`LabelIndex`
      (new detection, table-to-class matching, IMPLICIT_ATT),
    * per-property value pools (KB-Overlap matcher),
    * popularity ranking data (POPULARITY metric).
    """

    def __init__(self, schema: KBSchema) -> None:
        self.schema = schema
        self._instances: dict[str, KBInstance] = {}
        self._by_class: dict[str, list[str]] = defaultdict(list)
        self._label_index: LabelIndex | None = None
        self._exact_label_map: dict[str, list[str]] = defaultdict(list)
        self._search_cache: dict[tuple[str, int, str], list[LabelMatch]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_instance(self, instance: KBInstance) -> None:
        if instance.uri in self._instances:
            raise ValueError(f"duplicate instance: {instance.uri}")
        if instance.class_name not in self.schema:
            raise ValueError(f"unknown class: {instance.class_name}")
        self._instances[instance.uri] = instance
        self._by_class[instance.class_name].append(instance.uri)
        for label in instance.labels:
            self._exact_label_map[normalize_label(label)].append(instance.uri)
        self._label_index = None  # invalidate
        self._search_cache.clear()

    def add_instances(self, instances: Iterable[KBInstance]) -> None:
        for instance in instances:
            self.add_instance(instance)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, uri: str) -> bool:
        return uri in self._instances

    def __len__(self) -> int:
        return len(self._instances)

    def get(self, uri: str) -> KBInstance:
        return self._instances[uri]

    def instances_of(
        self, class_name: str, include_subclasses: bool = True
    ) -> list[KBInstance]:
        """All instances of a class, by default including subclasses."""
        names = (
            self.schema.descendants(class_name) if include_subclasses
            else {class_name}
        )
        return [
            self._instances[uri]
            for name in sorted(names)
            for uri in self._by_class.get(name, ())
        ]

    def instance_count(self, class_name: str, include_subclasses: bool = True) -> int:
        names = (
            self.schema.descendants(class_name) if include_subclasses
            else {class_name}
        )
        return sum(len(self._by_class.get(name, ())) for name in names)

    def instances_with_label(self, label: str) -> list[KBInstance]:
        """Instances whose normalized label equals the query exactly."""
        return [
            self._instances[uri]
            for uri in self._exact_label_map.get(normalize_label(label), ())
        ]

    def candidates_by_label(
        self, label: str, limit: int = 10, mode: str | None = None
    ) -> list[KBInstance]:
        """Top-``limit`` instances with labels similar to ``label``.

        Backed by the lazily built label index; the recall-oriented contract
        of the paper's Lucene index.  ``mode`` selects the index's
        candidate-generation mode (``"exact"`` / ``"fast"``); ``None``
        keeps the index default (exact).
        """
        matches = self.label_matches(label, limit, mode=mode)
        seen: set[str] = set()
        candidates: list[KBInstance] = []
        for match in matches:
            for uri in match.payloads:
                if uri not in seen:
                    seen.add(uri)
                    candidates.append(self._instances[uri])
        return candidates

    def label_matches(
        self, label: str, limit: int = 10, mode: str | None = None
    ) -> list[LabelMatch]:
        """Raw label matches (with retrieval scores) for ``label``.

        Results are cached per normalized query — web table rows repeat
        labels heavily, and the cache turns repeated lookups into dict
        hits.  The cache key includes the candidate mode, so exact and
        fast callers against the same KB never serve each other's
        results.
        """
        key = (normalize_label(label), limit, mode or "exact")
        cached = self._search_cache.get(key)
        if cached is not None:
            return cached
        if self._label_index is None:
            self._label_index = self._build_label_index()
        matches = self._label_index.search(label, limit, mode=mode)
        self._search_cache[key] = matches
        return matches

    def _build_label_index(self) -> LabelIndex:
        index = LabelIndex()
        for instance in self._instances.values():
            for label in instance.labels:
                index.add(label, instance.uri)
        return index

    # ------------------------------------------------------------------
    # Aggregates used by matchers and profiling
    # ------------------------------------------------------------------
    def property_values(self, class_name: str, property_name: str) -> list[object]:
        """All fact values of a property over the instances of a class."""
        return [
            instance.facts[property_name]
            for instance in self.instances_of(class_name)
            if property_name in instance.facts
        ]

    def fact_count(self, class_name: str) -> int:
        """Total facts over all instances of a class (Table 1)."""
        return sum(
            instance.fact_count() for instance in self.instances_of(class_name)
        )

    def popularity_rank(self, uris: Iterable[str]) -> list[str]:
        """URIs sorted by descending page-link count (POPULARITY metric)."""
        return sorted(
            uris,
            key=lambda uri: (-self._instances[uri].page_links, uri),
        )
