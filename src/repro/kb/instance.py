"""Knowledge base instances."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KBInstance:
    """An instance of a knowledge base class.

    ``facts`` maps property names to *normalized* values (see
    :mod:`repro.datatypes.normalization`); ``labels`` are the surface names
    the instance is known under; ``abstract`` is a short description used by
    the BOW entity-to-instance metric; ``page_links`` is the incoming
    Wikipedia page link count that drives the POPULARITY metric.
    """

    uri: str
    class_name: str
    labels: tuple[str, ...]
    facts: dict[str, object] = field(default_factory=dict)
    abstract: str = ""
    page_links: int = 0

    @property
    def primary_label(self) -> str:
        """The preferred display label (first label, or the URI tail)."""
        if self.labels:
            return self.labels[0]
        return self.uri.rsplit("/", 1)[-1]

    def fact(self, property_name: str):
        """The value for a property, or ``None`` when the slot is empty."""
        return self.facts.get(property_name)

    def fact_count(self) -> int:
        return len(self.facts)
