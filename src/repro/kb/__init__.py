"""Knowledge base substrate (DBpedia stand-in).

The pipeline consumes the knowledge base through this package's API only:
class hierarchy and typed property schema (:mod:`repro.kb.schema`),
instances with labels/facts/abstracts (:mod:`repro.kb.instance`), the
queryable store with label-based candidate lookup and page-link popularity
(:mod:`repro.kb.knowledge_base`), and the profiling helpers behind the
paper's Tables 1 and 2 (:mod:`repro.kb.profiling`).
"""

from repro.kb.schema import KBClass, KBProperty, KBSchema
from repro.kb.instance import KBInstance
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.profiling import class_profile, property_densities

__all__ = [
    "KBClass",
    "KBProperty",
    "KBSchema",
    "KBInstance",
    "KnowledgeBase",
    "class_profile",
    "property_densities",
]
