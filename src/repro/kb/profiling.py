"""Knowledge base profiling (the paper's Tables 1 and 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.kb.knowledge_base import KnowledgeBase


@dataclass(frozen=True)
class ClassProfile:
    """Instance and fact counts for one class (a row of Table 1)."""

    class_name: str
    instances: int
    facts: int


@dataclass(frozen=True)
class PropertyDensity:
    """Fact count and density for one property (a row of Table 2)."""

    class_name: str
    property_name: str
    facts: int
    density: float


def class_profile(kb: KnowledgeBase, class_name: str) -> ClassProfile:
    """Instances and facts of a class, as reported in Table 1."""
    return ClassProfile(
        class_name=class_name,
        instances=kb.instance_count(class_name),
        facts=kb.fact_count(class_name),
    )


def property_densities(
    kb: KnowledgeBase, class_name: str, min_density: float = 0.0
) -> list[PropertyDensity]:
    """Per-property densities of a class, sorted densest-first (Table 2).

    Density is the fraction of the class's instances carrying a fact for the
    property.  The paper only considers properties with an initial density of
    at least 30%; pass ``min_density=0.30`` to apply that filter.
    """
    instances = kb.instances_of(class_name)
    total = len(instances)
    rows: list[PropertyDensity] = []
    if total == 0:
        return rows
    for property_name in kb.schema.properties_of(class_name):
        facts = sum(1 for instance in instances if property_name in instance.facts)
        density = facts / total
        if density >= min_density:
            rows.append(
                PropertyDensity(class_name, property_name, facts, density)
            )
    rows.sort(key=lambda row: (-row.density, row.property_name))
    return rows
