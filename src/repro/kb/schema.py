"""Knowledge base schema: classes in a hierarchy and typed properties."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datatypes import DataType


@dataclass(frozen=True)
class KBProperty:
    """A property of a knowledge base class.

    ``labels`` holds the natural-language names under which the property is
    known (used by the KB-Label matcher); ``tolerance`` is the relative
    tolerance for quantity comparison (the paper's learned tolerance range).
    """

    name: str
    data_type: DataType
    labels: tuple[str, ...] = ()
    tolerance: float = 0.05

    def all_labels(self) -> tuple[str, ...]:
        """The property name plus its alternative surface labels."""
        return (self.name, *self.labels)


@dataclass
class KBClass:
    """A class with an optional parent (single-inheritance hierarchy)."""

    name: str
    parent: str | None = None
    properties: dict[str, KBProperty] = field(default_factory=dict)

    def property(self, name: str) -> KBProperty:
        return self.properties[name]


class KBSchema:
    """The class hierarchy plus per-class property schemata.

    DBpedia's ontology is a tree of classes; the TYPE similarity metric
    (Section 3.4) compares an instance's transitive classes against the
    entity's class ancestry, and candidate selection requires candidates to
    share the class or one parent class.
    """

    def __init__(self) -> None:
        self._classes: dict[str, KBClass] = {}

    def add_class(self, kb_class: KBClass) -> None:
        if kb_class.name in self._classes:
            raise ValueError(f"duplicate class: {kb_class.name}")
        if kb_class.parent is not None and kb_class.parent not in self._classes:
            raise ValueError(f"unknown parent class: {kb_class.parent}")
        self._classes[kb_class.name] = kb_class

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def get(self, name: str) -> KBClass:
        return self._classes[name]

    def classes(self) -> list[KBClass]:
        return list(self._classes.values())

    def properties_of(self, class_name: str) -> dict[str, KBProperty]:
        """Properties of a class, including those inherited from ancestors."""
        merged: dict[str, KBProperty] = {}
        for ancestor in reversed(self.ancestry(class_name)):
            merged.update(self._classes[ancestor].properties)
        return merged

    def ancestry(self, class_name: str) -> list[str]:
        """The class itself followed by its ancestors up to the root."""
        chain: list[str] = []
        current: str | None = class_name
        while current is not None:
            if current in chain:
                raise ValueError(f"class hierarchy cycle at {current}")
            chain.append(current)
            current = self._classes[current].parent
        return chain

    def descendants(self, class_name: str) -> set[str]:
        """The class itself plus all transitive subclasses."""
        result = {class_name}
        changed = True
        while changed:
            changed = False
            for kb_class in self._classes.values():
                if kb_class.parent in result and kb_class.name not in result:
                    result.add(kb_class.name)
                    changed = True
        return result

    def share_parent(self, class_a: str, class_b: str) -> bool:
        """Whether two classes coincide or share any ancestor below the root.

        Used by new-detection candidate selection: a candidate instance must
        be of the entity's class or share one parent class with it.
        """
        if class_a == class_b:
            return True
        ancestors_a = set(self.ancestry(class_a))
        ancestors_b = set(self.ancestry(class_b))
        shared = ancestors_a & ancestors_b
        roots = {chain[-1] for chain in (self.ancestry(class_a),)}
        return bool(shared - roots)

    def type_overlap(self, instance_classes: set[str], entity_class: str) -> float:
        """TYPE metric: overlap of instance classes with the entity ancestry.

        Returns the fraction of the entity's ancestry covered by the
        instance's (transitive) classes.
        """
        ancestry = self.ancestry(entity_class)
        if not ancestry:
            return 0.0
        expanded: set[str] = set()
        for name in instance_classes:
            if name in self._classes:
                expanded.update(self.ancestry(name))
        overlap = sum(1 for name in ancestry if name in expanded)
        return overlap / len(ancestry)
