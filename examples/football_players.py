"""Trained pipeline on football players, with gold-standard evaluation.

Reproduces the paper's evaluation flow for one class end to end:

1. build the world and derive a gold standard for GridironFootballPlayer,
2. train every learned component (schema matching weights/thresholds, the
   row-similarity aggregator, new-detection aggregator + thresholds),
3. run the two-iteration pipeline on the gold tables,
4. score new-instances-found and facts-found exactly as in Section 4.

Run with::

    python examples/football_players.py
"""

from repro import build_gold_standard, build_world
from repro.pipeline import (
    LongTailPipeline,
    PipelineConfig,
    evaluate_facts_found,
    evaluate_new_instances_found,
    train_models,
)
from repro.synthesis.profiles import WorldScale

CLASS_NAME = "GridironFootballPlayer"


def main() -> None:
    world = build_world(seed=7, scale=WorldScale.tiny())
    gold = build_gold_standard(world, CLASS_NAME)
    print(
        f"Gold standard: {len(gold.clusters)} clusters "
        f"({len(gold.new_clusters())} new) over {len(gold.table_ids)} tables"
    )

    print("\nTraining pipeline components ...")
    models = train_models(world.knowledge_base, world.corpus, gold, seed=5)
    print("  learned clustering offset:",
          models.diagnostics["clustering_offset"])
    print("  row metric importances:")
    for name, value in sorted(
        models.diagnostics["row_metric_importances"].items(),
        key=lambda item: -item[1],
    ):
        print(f"    {name:13s} {value:.3f}")

    print("\nRunning the trained pipeline ...")
    pipeline = LongTailPipeline(
        world.knowledge_base, PipelineConfig(), models.as_pipeline_models()
    )
    result = pipeline.run(
        world.corpus,
        CLASS_NAME,
        table_ids=list(gold.table_ids),
        row_ids=set(gold.annotated_rows()),
        known_classes={table_id: CLASS_NAME for table_id in gold.table_ids},
    )
    print(result.summary())

    instances = evaluate_new_instances_found(
        result.final.entities, result.final.detection, gold
    )
    facts = evaluate_facts_found(
        result.final.entities, result.final.detection, gold,
        world.knowledge_base,
    )
    print("\nNew instances found: "
          f"P={instances.precision:.3f} R={instances.recall:.3f} "
          f"F1={instances.f1:.3f}")
    print("Facts found:         "
          f"P={facts.precision:.3f} R={facts.recall:.3f} F1={facts.f1:.3f}")
    print("(training and evaluation share the gold standard here; the "
          "benchmarks use 3-fold cross-validation)")


if __name__ == "__main__":
    main()
