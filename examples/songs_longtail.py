"""Large-scale profiling of the Song class (the paper's Section 5 story).

Songs are the class where web tables have the most to offer: huge numbers
of obscure songs never clear Wikipedia's notability bar.  This example
runs the full-corpus pipeline for songs, profiles the result (Table 11
row), shows the property-density shift of new entities (Table 12), and
demonstrates the homonym problem with cover versions.

Run with::

    python examples/songs_longtail.py
"""

from collections import Counter

from repro import build_gold_standard, build_world
from repro.pipeline import LongTailPipeline, PipelineConfig, train_models
from repro.pipeline.profiling import profile_class_run
from repro.synthesis.profiles import WorldScale
from repro.text.tokenize import normalize_label


def main() -> None:
    world = build_world(seed=7, scale=WorldScale.tiny())
    gold = build_gold_standard(world, "Song")

    print("Training on the gold standard ...")
    models = train_models(world.knowledge_base, world.corpus, gold, seed=5)

    print("Running the pipeline over ALL corpus tables matched to Song ...")
    pipeline = LongTailPipeline(
        world.knowledge_base, PipelineConfig(), models.as_pipeline_models()
    )
    result = pipeline.run(world.corpus, "Song")

    profile = profile_class_run(world, result)
    print("\n--- Table 11 row (synthetic scale) ---")
    print(f"rows={profile.total_rows:,} existing={profile.existing_entities:,} "
          f"matchedKB={profile.matched_instances:,} "
          f"ratio={profile.matching_ratio:.2f}")
    print(f"new entities={profile.new_entities:,} (+"
          f"{profile.increase_instances:.0%} vs KB) "
          f"new facts={profile.new_facts:,} (+{profile.increase_facts:.0%})")
    print(f"accuracy: entities={profile.accuracy_new:.2f} "
          f"facts={profile.accuracy_facts:.2f}")

    print("\n--- Table 12: property densities of new songs ---")
    for row in profile.densities:
        print(f"  {row.property_name:15s} {row.facts:6,} {row.density:7.2%}")

    print("\n--- The homonym problem (cover versions) ---")
    label_counts = Counter(
        normalize_label(entity.primary_label)
        for entity in result.final.entities
    )
    homonyms = [label for label, count in label_counts.items() if count > 1]
    print(f"{len(homonyms)} labels are shared by multiple returned entities")
    for label in homonyms[:5]:
        entities = [
            entity
            for entity in result.final.entities
            if normalize_label(entity.primary_label) == label
        ]
        print(f"  {label!r}:")
        for entity in entities[:3]:
            artist = entity.facts.get("musicalArtist", "?")
            print(f"    by {artist} "
                  f"({result.final.detection.classifications[entity.entity_id]})")


if __name__ == "__main__":
    main()
