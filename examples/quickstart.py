"""Quickstart: extend a knowledge base with long tail entities.

Builds the synthetic world (a scaled DBpedia-like knowledge base plus a
WDC-like web table corpus), runs the untrained default pipeline on the
Song class, and prints the new entities it proposes.

Run with::

    python examples/quickstart.py
"""

from repro import LongTailPipeline, build_world
from repro.synthesis.profiles import WorldScale


def main() -> None:
    print("Building synthetic world (KB + web table corpus) ...")
    world = build_world(seed=7, scale=WorldScale.tiny())
    kb = world.knowledge_base
    print(f"  knowledge base: {len(kb):,} instances")
    print(f"  corpus: {len(world.corpus):,} tables, "
          f"{world.corpus.total_rows():,} rows")

    print("\nRunning the pipeline (untrained defaults) on class Song ...")
    pipeline = LongTailPipeline.default(kb)
    result = pipeline.run(world.corpus, "Song")
    print(result.summary())

    print("\nTop proposed new songs:")
    new_entities = sorted(
        result.new_entities(), key=lambda entity: -entity.fact_count()
    )
    for entity in new_entities[:10]:
        facts = ", ".join(
            f"{name}={value}" for name, value in sorted(entity.facts.items())
        )
        print(f"  {entity.primary_label!r}: {facts}")

    truly_new = sum(
        1
        for entity in new_entities
        if (gt := _majority_gt(entity, world)) is not None
        and not world.entities[gt].in_kb
    )
    print(
        f"\n{len(new_entities)} entities proposed as new; "
        f"{truly_new} verified new against ground truth."
    )


def _majority_gt(entity, world):
    from collections import Counter

    votes = Counter(
        world.row_truth[row_id]
        for row_id in entity.row_ids()
        if row_id in world.row_truth
    )
    if not votes:
        return None
    gt_id, count = votes.most_common(1)[0]
    return gt_id if count * 2 > len(entity.rows) else None


if __name__ == "__main__":
    main()
