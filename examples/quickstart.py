"""Quickstart: extend a knowledge base with long tail entities.

Builds the synthetic world (a scaled DBpedia-like knowledge base plus a
WDC-like web table corpus) inside a :class:`repro.RunSession`, runs the
untrained default pipeline on the Song class with per-stage timing, and
prints the new entities it proposes.  A second part demonstrates the
scalable path: streaming the corpus into a sharded on-disk
:class:`repro.CorpusStore` (what ``repro ingest`` does) and serving the
same run from disk with bounded memory.

Run with::

    python examples/quickstart.py

To keep the knowledge base up as a long-lived HTTP service instead of a
one-shot batch run (ingest deltas, trigger incremental runs, query
entities/facts with provenance), see ``examples/serve_quickstart.py``
and ``python -m repro serve --store <store> --port 8023``.
"""

import tempfile
from pathlib import Path

from repro import RunSession, TimingObserver


def main() -> None:
    print("Building synthetic world (KB + web table corpus) ...")
    session = RunSession.from_seed(seed=7, scale=0.25)
    world = session.world
    kb = session.knowledge_base
    print(f"  knowledge base: {len(kb):,} instances")
    print(f"  corpus: {len(session.corpus):,} tables, "
          f"{session.corpus.total_rows():,} rows")

    print("\nRunning the pipeline (untrained defaults) on class Song ...")
    timer = TimingObserver()
    result = session.run("Song", observers=[timer])
    print(result.summary())
    print("\nPer-stage wall time:")
    print(timer.report())

    print("\nTop proposed new songs:")
    new_entities = sorted(
        result.new_entities(), key=lambda entity: -entity.fact_count()
    )
    for entity in new_entities[:10]:
        facts = ", ".join(
            f"{name}={value}" for name, value in sorted(entity.facts.items())
        )
        print(f"  {entity.primary_label!r}: {facts}")

    truly_new = sum(
        1
        for entity in new_entities
        if (gt := _majority_gt(entity, world)) is not None
        and not world.entities[gt].in_kb
    )
    print(
        f"\n{len(new_entities)} entities proposed as new; "
        f"{truly_new} verified new against ground truth."
    )

    # The session caches stage artifacts: an identical re-run is ~free.
    session.run("Song")
    info = session.cache_info()
    print(f"re-run served from cache: {info['hits']} stage hits")

    ingest_and_rerun(session, result)


def ingest_and_rerun(session, in_memory_result) -> None:
    """The scalable path: stream the corpus into a sharded on-disk store.

    Equivalent CLI (on a saved world / any JSONL, CSV-dir or WDC dump)::

        repro build-world --output world/
        repro ingest world/corpus.jsonl --store store/ --shards 4 \\
            --min-rows 2 --require-subject-column --index
        # then in Python: RunSession.from_corpus_store("store/")
    """
    from repro import CorpusLabelIndex, CorpusStore
    from repro.corpus import ShapeFilter, SubjectColumnFilter

    print("\nIngesting the corpus into a sharded on-disk store ...")
    with tempfile.TemporaryDirectory() as tmp:
        store = CorpusStore.create(Path(tmp) / "store", shards=4)
        label_index = CorpusLabelIndex()
        report = store.ingest(
            iter(session.corpus),  # any WebTable stream works here
            filters=[ShapeFilter(min_rows=2), SubjectColumnFilter()],
            index=label_index,
        )
        label_index.save_to_store(store)
        print(f"  {report.summary()}")
        print(f"  shards: {store.shard_sizes()}")
        print(f"  label index: {label_index.n_labels():,} distinct labels")

        disk_session = RunSession.from_corpus_store(
            store, knowledge_base=session.knowledge_base
        )
        disk_result = disk_session.run("Song")
        same = (
            disk_result.summary_dict() == in_memory_result.summary_dict()
        )
        print(f"  store-backed re-run matches in-memory run: {same}")
        print(f"  corpus cache: {disk_session.corpus.cache_info()}")


def _majority_gt(entity, world):
    from collections import Counter

    votes = Counter(
        world.row_truth[row_id]
        for row_id in entity.row_ids()
        if row_id in world.row_truth
    )
    if not votes:
        return None
    gt_id, count = votes.most_common(1)[0]
    return gt_id if count * 2 > len(entity.rows) else None


if __name__ == "__main__":
    main()
