"""Quickstart: the knowledge base as a long-lived service.

Runs the full `repro serve` loop in one process: ingest a corpus into a
sharded on-disk store, start the service (writer thread + HTTP server on
an ephemeral port), publish a run, query entities and facts over HTTP,
then ingest a delta and watch the incremental republish — byte-identical
to a from-scratch batch run, but reusing every artifact the delta did
not invalidate.

Run with::

    python examples/serve_quickstart.py

The standalone equivalent is two terminals::

    PYTHONPATH=src python -m repro serve --store /data/store --port 8023
    curl -s localhost:8023/health
"""

import tempfile
import threading
from pathlib import Path

from repro import CorpusStore, build_world
from repro.io import save_knowledge_base
from repro.io.serialize import WORLD_KB_FILE
from repro.serve import KBService, ServiceClient, make_server
from repro.synthesis.profiles import WorldScale


def table_record(table) -> dict:
    """The jsonl-style wire form POST /ingest accepts."""
    return {
        "table_id": table.table_id,
        "header": list(table.header),
        "rows": [list(row) for row in table.rows],
        "url": table.url,
    }


def main() -> None:
    print("Building synthetic world and corpus store ...")
    world = build_world(seed=11, scale=WorldScale(0.08), classes=["Song"])
    tables = list(world.corpus)
    day0, day1 = tables[:-4], tables[-4:]

    with tempfile.TemporaryDirectory() as tmp:
        store = CorpusStore.create(Path(tmp) / "store", shards=2)
        save_knowledge_base(
            world.knowledge_base, store.directory / WORLD_KB_FILE
        )
        store.ingest(day0)
        print(f"  day 0: {len(store)} tables ingested")

        print("Starting the service ...")
        service = KBService.from_store(store).start()
        server = make_server(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            print(f"  serving on http://{host}:{port}")
            print(f"  health: {client.health()['status']}")

            print("Publishing the first run ...")
            run = client.wait_for_run(client.submit_run("Song")["run_id"])
            print(f"  {run['run_id']}: {run['status']}, "
                  f"snapshot v{run['snapshot_version']}")

            entities = client.entities(class_name="Song", status="new")
            print(f"  {entities['total']} new entities published")
            facts = client.facts(class_name="Song")
            example = facts["facts"][0]
            print(f"  {facts['total']} facts with provenance, e.g. "
                  f"{example['entity_id']}.{example['property']} from "
                  f"table {example['provenance'][0]['table_id']}")

            print("Ingesting the day-1 delta over HTTP ...")
            report = client.ingest([table_record(t) for t in day1])
            print(f"  inserted: {report['report']['inserted_ids']}")

            run = client.wait_for_run(client.submit_run("Song")["run_id"])
            reuse = run["incremental_report"]
            print(f"  {run['run_id']}: republished as snapshot "
                  f"v{run['snapshot_version']} — analyses reused "
                  f"{reuse['analyses_loaded']}, recomputed "
                  f"{reuse['analyses_computed']}")

            latency = client.metrics()["requests"]["latency_ms"]
            print(f"  served {latency['count']} requests, "
                  f"p50 {latency['p50']:.2f}ms / p99 {latency['p99']:.2f}ms")
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            store.close()
    print("Done.")


if __name__ == "__main__":
    main()
