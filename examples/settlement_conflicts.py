"""Why settlements resist augmentation (the paper's hardest class).

The paper finds only 26% of proposed new settlements are correct: almost
everything with legal recognition already has a Wikipedia article, so the
remaining candidates are dominated by corner cases — conflicting
``isPartOf`` values (county vs. province, both correct), outdated
population numbers, and tables that describe regions or mountains rather
than settlements.  This example reproduces those error channels.

Run with::

    python examples/settlement_conflicts.py
"""

from collections import Counter

from repro import build_world
from repro.pipeline import LongTailPipeline
from repro.synthesis.profiles import WorldScale


def main() -> None:
    world = build_world(seed=7, scale=WorldScale.tiny())

    conflicted = [
        entity
        for entity in world.entities_of_class("Settlement")
        if "isPartOf" in entity.alt_facts
    ]
    print(f"{len(conflicted)} settlements carry two correct isPartOf values, e.g.:")
    for entity in conflicted[:3]:
        print(f"  {entity.name}: {entity.facts['isPartOf']!r} "
              f"vs {entity.alt_facts['isPartOf']!r}")

    lookalikes = [
        entity
        for entity in world.entities.values()
        if entity.class_name in ("Region", "Mountain")
    ]
    print(f"\n{len(lookalikes)} regions/mountains pollute the corpus "
          "(some with settlement-like names):")
    for entity in lookalikes[:5]:
        print(f"  {entity.name} ({entity.class_name})")

    print("\nRunning the default pipeline on Settlement ...")
    pipeline = LongTailPipeline.default(world.knowledge_base)
    result = pipeline.run(world.corpus, "Settlement")
    print(result.summary())

    print("\nJudging proposed new settlements against ground truth:")
    verdicts = Counter()
    for entity in result.new_entities():
        votes = Counter(
            world.row_truth[row_id]
            for row_id in entity.row_ids()
            if row_id in world.row_truth
        )
        if not votes:
            verdicts["no coherent entity"] += 1
            continue
        gt_id, count = votes.most_common(1)[0]
        truth = world.entities[gt_id]
        if count * 2 <= len(entity.rows):
            verdicts["mixed rows"] += 1
        elif truth.class_name != "Settlement":
            verdicts[f"actually a {truth.class_name}"] += 1
        elif truth.in_kb:
            verdicts["already in KB (missed match)"] += 1
        else:
            verdicts["correct new settlement"] += 1
    for reason, count in verdicts.most_common():
        print(f"  {reason}: {count}")


if __name__ == "__main__":
    main()
