"""Benchmark: regenerates Table 5 (gold standard overview)."""

from repro.experiments import table05


def test_table05(benchmark, env):
    result = benchmark.pedantic(table05.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
