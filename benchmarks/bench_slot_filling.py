"""Benchmark: slot-filling by-product volumes (Section 6 comparison)."""

from repro.experiments import slot_filling


def test_slot_filling(benchmark, env):
    result = benchmark.pedantic(
        slot_filling.run, args=(env,), rounds=1, iterations=1
    )
    print()
    print(result.format())
    assert result.rows
