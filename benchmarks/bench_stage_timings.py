"""Benchmark: per-stage wall time of a default pipeline run.

Uses the :class:`~repro.pipeline.stages.TimingObserver` hooks of the
stage API, so the reported split is exactly what any consumer of
``RunSession(observers=[...])`` would see.
"""

from repro.pipeline.stages import DEFAULT_STAGE_NAMES, TimingObserver


def test_stage_timings(benchmark, env):
    def run_with_timer():
        timer = TimingObserver()
        result = env.session.run("Song", observers=[timer], use_cache=False)
        return timer, result

    timer, result = benchmark.pedantic(run_with_timer, rounds=1, iterations=1)
    print()
    print(timer.report())
    assert set(timer.by_stage()) == set(DEFAULT_STAGE_NAMES)
    assert result.final.entities
