"""Benchmark: the `repro serve` read path under concurrent load.

Starts a real service — store on disk, writer thread, HTTP server on an
ephemeral port — publishes one run, then hammers the hot read endpoints
(``/entities``, ``/facts``, ``/entities/<class>/<id>``, ``/health``)
from several client threads while recording per-request latency.  The
write path is measured once: a delta ingest followed by an incremental
run and snapshot swap (the "republish" cycle).

Two properties are asserted before any number is trusted:

* every request succeeded and every response named a consistent
  snapshot version;
* the served canonical JSON after the republish is byte-identical to a
  from-scratch batch run over the final store state.

The measured numbers are persisted to ``BENCH_serve.json`` at the repo
root via :func:`repro.perf.bench.serve_bench_document` — the service
layer's entry in the perf trajectory.  ``REPRO_BENCH_SERVE_REQUESTS`` /
``REPRO_BENCH_SERVE_CONCURRENCY`` scale the load;
``REPRO_BENCH_SERVE_MIN_RPS`` is the (deliberately loose) throughput
floor; ``REPRO_BENCH_SERVE_OUTPUT`` redirects the artifact.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.api import RunSession
from repro.corpus.store import CorpusStore
from repro.io import save_knowledge_base
from repro.io.serialize import WORLD_KB_FILE
from repro.perf.bench import SERVE_BENCH_FILE, serve_bench_document, write_bench_file
from repro.perf.percentiles import percentile_summary
from repro.serve import KBService, ServiceClient, make_server
from repro.synthesis.api import build_world
from repro.synthesis.profiles import WorldScale

CLASS_NAME = "Song"
SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
SCALE = float(os.environ.get("REPRO_BENCH_SERVE_SCALE", "0.1"))
N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "200"))
CONCURRENCY = int(os.environ.get("REPRO_BENCH_SERVE_CONCURRENCY", "4"))
MIN_RPS = float(os.environ.get("REPRO_BENCH_SERVE_MIN_RPS", "20.0"))
REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = Path(os.environ.get("REPRO_BENCH_SERVE_OUTPUT", REPO_ROOT / SERVE_BENCH_FILE))

#: Tables held back from the initial ingest to form the republish delta.
N_DELTA = 3


def _measure_endpoint(base_url: str, call, n_requests: int, concurrency: int):
    """``call(client)`` fired ``n_requests`` times from worker threads."""
    latencies: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()
    remaining = list(range(n_requests))

    def worker():
        client = ServiceClient(base_url, timeout=120)
        while True:
            with lock:
                if not remaining:
                    return
                remaining.pop()
            started = time.perf_counter()
            try:
                call(client)
            except Exception as error:  # noqa: BLE001 - collected, asserted
                with lock:
                    failures.append(f"{type(error).__name__}: {error}")
                return
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed * 1000.0)

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    assert not failures, failures
    assert len(latencies) == n_requests
    return {
        "requests": n_requests,
        "requests_per_second": round(n_requests / wall, 2),
        "latency_ms": {
            key: round(value, 3)
            for key, value in percentile_summary(latencies).items()
        },
    }


def test_serve_read_path_under_load(tmp_path):
    world = build_world(seed=SEED, scale=WorldScale(SCALE), classes=[CLASS_NAME])
    tables = list(world.corpus)
    store = CorpusStore.create(tmp_path / "store", shards=2)
    save_knowledge_base(world.knowledge_base, store.directory / WORLD_KB_FILE)
    store.ingest(tables[:-N_DELTA])

    service = KBService.from_store(store).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base_url = f"http://{host}:{port}"
    client = ServiceClient(base_url, timeout=300)
    try:
        first = client.wait_for_run(
            client.submit_run(CLASS_NAME)["run_id"], timeout=600
        )
        assert first["status"] == "done"
        entity_id = client.entities(class_name=CLASS_NAME, limit=1)[
            "entities"
        ][0]["id"]

        endpoints = {
            "/entities": _measure_endpoint(
                base_url,
                lambda c: c.entities(class_name=CLASS_NAME),
                N_REQUESTS,
                CONCURRENCY,
            ),
            "/facts": _measure_endpoint(
                base_url,
                lambda c: c.facts(class_name=CLASS_NAME),
                N_REQUESTS,
                CONCURRENCY,
            ),
            "/entities/<class>/<id>": _measure_endpoint(
                base_url,
                lambda c: c.entity(CLASS_NAME, entity_id),
                N_REQUESTS,
                CONCURRENCY,
            ),
            "/health": _measure_endpoint(
                base_url,
                lambda c: c.health(),
                N_REQUESTS,
                CONCURRENCY,
            ),
        }

        # The write path, once: delta ingest → incremental run → swap.
        delta = [
            {
                "table_id": table.table_id,
                "header": list(table.header),
                "rows": [list(row) for row in table.rows],
                "url": table.url,
            }
            for table in tables[-N_DELTA:]
        ]
        republish_started = time.perf_counter()
        client.ingest(delta)
        second = client.wait_for_run(
            client.submit_run(CLASS_NAME)["run_id"], timeout=600
        )
        republish_seconds = time.perf_counter() - republish_started
        assert second["status"] == "done"
        republish = {
            "delta_tables": N_DELTA,
            "seconds": round(republish_seconds, 4),
            "incremental_report": second["incremental_report"],
        }

        # Trust gate: the served bytes still equal a batch rebuild.
        oracle = RunSession.from_corpus_store(store, artifacts=False)
        batch = oracle.run(CLASS_NAME, use_cache=False, executor="serial")
        assert client.run_canonical(second["run_id"]) == batch.canonical_json()
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        store.close()

    for name, entry in endpoints.items():
        print(
            f"\n{name}: {entry['requests_per_second']:.0f} req/s, "
            f"p50 {entry['latency_ms']['p50']:.2f}ms, "
            f"p99 {entry['latency_ms']['p99']:.2f}ms"
        )
        assert entry["requests_per_second"] >= MIN_RPS, (
            f"{name} throughput {entry['requests_per_second']} req/s fell "
            f"below the {MIN_RPS} req/s floor"
        )

    document = serve_bench_document(
        seed=SEED,
        scale=SCALE,
        store_tables=len(tables),
        concurrency=CONCURRENCY,
        endpoints=endpoints,
        republish=republish,
    )
    write_bench_file(OUTPUT, document)
    print(f"\nwrote {OUTPUT}")
