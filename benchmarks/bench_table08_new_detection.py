"""Benchmark: regenerates Table 8 (new detection ablation).

One held-out fold (see bench_table07 note); the full 3-fold version is
``table08.run(env)``.
"""

from repro.experiments import table08


def test_table08(benchmark, env):
    result = benchmark.pedantic(
        table08.run, args=(env,), kwargs={"folds": (0,)}, rounds=1, iterations=1
    )
    print()
    print(result.format())
    assert result.rows
