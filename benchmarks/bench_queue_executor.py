"""Benchmark: the distributed queue executor against a real worker fleet.

The acceptance claim of the ``queue`` backend, measured: per-table
schema matching over ``REPRO_BENCH_CORPUS_TABLES`` (default 5 000)
synthetic song tables is routed through a filesystem+SQLite spool
drained by ``REPRO_BENCH_WORKERS`` (default 4) *external* ``python -m
repro worker`` subprocesses — the same deployment shape as a multi-host
fleet sharing the spool over NFS — and

1. **Determinism** — the queue run's mapping is identical to the serial
   run's, asserted unconditionally on every machine (chunks survive a
   pickle → sqlite claim → subprocess → pickle round trip unchanged);
2. **Speedup** — the fleet beats serial by ≥ ``REPRO_BENCH_MIN_SPEEDUP``
   (default 1.3×, slightly below the in-process pool's bar: every chunk
   pays spool pickling and lease bookkeeping).  As in the other parallel
   benchmarks the assertion arms only when the machine exposes more CPUs
   than the fleet has workers (``REPRO_BENCH_REQUIRE_SPEEDUP`` forces).

The measured numbers are persisted to ``BENCH_queue.json`` at the repo
root (``REPRO_BENCH_QUEUE_OUTPUT`` redirects) — the committed evidence
that distributing a run across worker processes actually pays.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from bench_parallel_stages import canonical_mapping, synthetic_tables
from repro.matching.schema_matcher import SchemaMatcher
from repro.parallel import QueueExecutor, queue_stats
from repro.perf.bench import write_bench_file
from repro.webtables import TableCorpus

N_TABLES = int(os.environ.get("REPRO_BENCH_CORPUS_TABLES", "5000"))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.3"))

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = Path(
    os.environ.get("REPRO_BENCH_QUEUE_OUTPUT", REPO_ROOT / "BENCH_queue.json")
)


def _speedup_required() -> bool:
    flag = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP")
    if flag is not None:
        return flag == "1"
    return (os.cpu_count() or 1) > WORKERS


def _spawn_fleet(spool: Path, count: int) -> list[subprocess.Popen]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--queue",
                str(spool),
                "--poll",
                "0.02",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for __ in range(count)
    ]


def test_queue_fleet_speedup_and_equality(env, tmp_path):
    kb = env.world.knowledge_base
    corpus = TableCorpus(list(synthetic_tables(N_TABLES)))

    started = time.perf_counter()
    serial_mapping = SchemaMatcher(kb).match_corpus(corpus)
    serial_seconds = time.perf_counter() - started

    spool = tmp_path / "queue"
    fleet = _spawn_fleet(spool, WORKERS)
    try:
        # Give the fleet a beat to register before timing starts, so we
        # measure execution, not subprocess interpreter startup.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            stats = queue_stats(spool)
            if stats and stats["active_workers"] >= WORKERS:
                break
            time.sleep(0.05)
        with QueueExecutor(
            spool, workers=WORKERS, poll_interval=0.01
        ) as executor:
            started = time.perf_counter()
            queue_mapping = SchemaMatcher(
                kb, executor=executor
            ).match_corpus(corpus)
            queue_seconds = time.perf_counter() - started
        stats = queue_stats(spool) or {}
    finally:
        for worker in fleet:
            worker.terminate()
        for worker in fleet:
            worker.wait(timeout=30.0)

    assert canonical_mapping(queue_mapping) == canonical_mapping(
        serial_mapping
    ), "queue-executed schema matching diverged from serial"

    speedup = serial_seconds / queue_seconds if queue_seconds else 0.0
    print()
    print(
        f"schema matching: serial {serial_seconds:.2f}s vs "
        f"queue fleet×{WORKERS} {queue_seconds:.2f}s "
        f"→ {speedup:.2f}× ({os.cpu_count()} CPUs visible, "
        f"{stats.get('lease_expiries', 0)} lease expiries)"
    )

    document = {
        "schema": "repro.bench.queue/v1",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "workload": {
            "stage": "schema_matching",
            "tables": N_TABLES,
            "workers": WORKERS,
            "transport": "external repro worker subprocesses",
        },
        "serial_seconds": round(serial_seconds, 3),
        "queue_seconds": round(queue_seconds, 3),
        "speedup": round(speedup, 3),
        "equality": "byte-identical canonical mapping",
        "lease_expiries": stats.get("lease_expiries", 0),
        "gate": {
            "min_speedup": MIN_SPEEDUP,
            "armed": _speedup_required(),
            "passed": speedup >= MIN_SPEEDUP,
        },
    }
    write_bench_file(OUTPUT, document)

    if _speedup_required():
        assert speedup >= MIN_SPEEDUP, (
            f"queue fleet (workers={WORKERS}) speedup {speedup:.2f}× "
            f"below the {MIN_SPEEDUP}× bar on {os.cpu_count()} CPUs"
        )
