"""Benchmark: regenerates Table 9 (new instances found)."""

from repro.experiments import table09


def test_table09(benchmark, env):
    result = benchmark.pedantic(table09.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
