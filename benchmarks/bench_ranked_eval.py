"""Benchmark: regenerates Section 6 (ranked evaluation)."""

from repro.experiments import ranked_eval


def test_ranked_eval(benchmark, env):
    result = benchmark.pedantic(ranked_eval.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
