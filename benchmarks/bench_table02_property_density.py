"""Benchmark: regenerates Table 2 (KB property densities)."""

from repro.experiments import table02


def test_table02(benchmark, env):
    result = benchmark.pedantic(table02.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
