"""Benchmark: regenerates Table 11 (large-scale profiling)."""

from repro.experiments import table11


def test_table11(benchmark, env):
    result = benchmark.pedantic(table11.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
