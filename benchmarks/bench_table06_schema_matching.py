"""Benchmark: regenerates Table 6 (attribute matching by iteration)."""

from repro.experiments import table06


def test_table06(benchmark, env):
    result = benchmark.pedantic(table06.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
