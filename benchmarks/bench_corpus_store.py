"""Benchmark: streaming corpus ingestion and store-backed pipeline runs.

Two claims are verified:

1. **Bounded-memory ingestion** — streaming ``REPRO_BENCH_CORPUS_TABLES``
   (default 50 000) synthetic web tables into a sharded
   :class:`~repro.corpus.store.CorpusStore` has a peak traced memory
   that does not grow with corpus size (we ingest a 5× smaller corpus
   and require the full-size peak to stay within 2× of it, plus a hard
   absolute cap).
2. **Backend equivalence** — a :meth:`RunSession.from_corpus_store`-backed
   pipeline run produces byte-identical results to the in-memory path on
   the seed fixtures.
"""

from __future__ import annotations

import os
import tracemalloc
from typing import Iterator

from repro.api import RunSession
from repro.corpus.store import CorpusStore
from repro.webtables.table import WebTable

N_TABLES = int(os.environ.get("REPRO_BENCH_CORPUS_TABLES", "50000"))

#: Hard cap on ingest peak memory — far below any materialized corpus.
PEAK_CAP_BYTES = 128 * 1024 * 1024


def synthetic_tables(count: int) -> Iterator[WebTable]:
    """A deterministic stream of small song-like tables."""
    for number in range(count):
        yield WebTable(
            table_id=f"synth-{number:07d}",
            header=("name", "artist", "year", "length"),
            rows=[
                (
                    f"song {number} take {row}",
                    f"artist {number % 997}",
                    str(1960 + (number + row) % 60),
                    f"{2 + row}:{number % 60:02d}",
                )
                for row in range(4)
            ],
            url=f"http://bench.example/tables/{number}",
        )


def _ingest_peak(directory, count: int) -> tuple[int, int]:
    """(peak traced bytes, tables stored) for one streaming ingest."""
    store = CorpusStore.create(directory, shards=4)
    try:
        tracemalloc.start()
        report = store.ingest(synthetic_tables(count), batch_size=512)
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        assert report.inserted == count
        return peak, len(store)
    finally:
        store.close()


def test_streaming_ingest_bounded_memory(benchmark, tmp_path):
    small_count = max(N_TABLES // 5, 1)
    small_peak, small_stored = _ingest_peak(tmp_path / "small", small_count)
    assert small_stored == small_count

    def ingest_full():
        return _ingest_peak(tmp_path / "full", N_TABLES)

    full_peak, full_stored = benchmark.pedantic(
        ingest_full, rounds=1, iterations=1
    )
    assert full_stored == N_TABLES
    print()
    print(
        f"peak ingest memory: {small_peak / 1e6:.1f} MB at {small_count} "
        f"tables vs {full_peak / 1e6:.1f} MB at {N_TABLES} tables"
    )
    # Peak memory must be a function of batch size, not corpus size.
    assert full_peak < 2 * small_peak + 8 * 1024 * 1024, (
        f"ingest peak grew with corpus size: {small_peak} -> {full_peak}"
    )
    assert full_peak < PEAK_CAP_BYTES


def test_store_backed_run_identical(env, tmp_path):
    """Store-backed and in-memory runs agree byte for byte."""
    store = CorpusStore.create(tmp_path / "store", shards=3)
    report = store.ingest(iter(env.world.corpus), batch_size=256)
    assert report.inserted == len(env.world.corpus)

    memory_session = RunSession(world=env.world)
    store_session = RunSession.from_corpus_store(
        store, knowledge_base=env.world.knowledge_base
    )
    memory_run = memory_session.run("Song", use_cache=False)
    store_run = store_session.run("Song", use_cache=False)
    memory_bytes = memory_run.canonical_json().encode("utf-8")
    store_bytes = store_run.canonical_json().encode("utf-8")
    assert memory_bytes == store_bytes
    assert store_run.final.entities
