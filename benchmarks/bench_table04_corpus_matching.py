"""Benchmark: regenerates Table 4 (corpus-to-KB matching)."""

from repro.experiments import table04


def test_table04(benchmark, env):
    result = benchmark.pedantic(table04.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
