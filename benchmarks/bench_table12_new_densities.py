"""Benchmark: regenerates Table 12 (new-entity property densities)."""

from repro.experiments import table12


def test_table12(benchmark, env):
    result = benchmark.pedantic(table12.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
