"""Benchmark: the parallel execution engine on the pipeline hot paths.

Two claims are verified on a generated corpus of
``REPRO_BENCH_CORPUS_TABLES`` (default 5 000) song-like web tables:

1. **Determinism** — serial and ``ProcessExecutor(workers=4)`` runs of
   per-table schema matching produce identical mappings, and serial and
   parallel clustering produce identical clusters.  This is asserted
   unconditionally, on every machine.
2. **Speedup** — the process-pool run is ≥ ``REPRO_BENCH_MIN_SPEEDUP``
   (default 1.5×) faster than the serial run.  Wall-clock speedup needs
   hardware: the assertion arms only when the machine exposes *more*
   CPUs than the pool uses (``REPRO_BENCH_REQUIRE_SPEEDUP=1`` forces it
   on, ``=0`` off); the measured ratio is always printed.
"""

from __future__ import annotations

import os
import time
from typing import Iterator

from repro.clustering.clusterer import RowClusterer
from repro.clustering.metrics import BowMetric, LabelMetric
from repro.clustering.similarity import RowSimilarity
from repro.matching.records import build_row_records
from repro.matching.schema_matcher import SchemaMatcher
from repro.ml.aggregation import StaticWeightedAggregator
from repro.parallel import ProcessExecutor
from repro.webtables import TableCorpus, WebTable

N_TABLES = int(os.environ.get("REPRO_BENCH_CORPUS_TABLES", "5000"))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.5"))


def _speedup_required() -> bool:
    flag = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP")
    if flag is not None:
        return flag == "1"
    # Strictly more CPUs than workers: an exactly-4-vCPU shared CI
    # runner oversubscribes the pool and measures noise, not capacity.
    return (os.cpu_count() or 1) > WORKERS


def synthetic_tables(count: int) -> Iterator[WebTable]:
    """A deterministic stream of small song-like tables."""
    for number in range(count):
        yield WebTable(
            table_id=f"synth-{number:07d}",
            header=("name", "artist", "year", "length"),
            rows=[
                (
                    f"song {number} take {row}",
                    f"artist {number % 997}",
                    str(1960 + (number + row) % 60),
                    f"{2 + row}:{number % 60:02d}",
                )
                for row in range(4)
            ],
            url=f"http://bench.example/tables/{number}",
        )


def canonical_mapping(mapping) -> list:
    return [
        (
            table_id,
            table_mapping.class_name,
            table_mapping.class_score,
            table_mapping.label_column,
            sorted(
                (column, link.property_name, link.score)
                for column, link in table_mapping.attributes.items()
            ),
        )
        for table_id, table_mapping in sorted(mapping.by_table.items())
    ]


def _report(label: str, serial_seconds: float, parallel_seconds: float) -> float:
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    print()
    print(
        f"{label}: serial {serial_seconds:.2f}s vs "
        f"process×{WORKERS} {parallel_seconds:.2f}s "
        f"→ {speedup:.2f}× ({os.cpu_count()} CPUs visible)"
    )
    return speedup


def test_parallel_schema_matching_speedup_and_equality(env, benchmark):
    """Per-table correspondence scoring: identical output, pooled speedup."""
    kb = env.world.knowledge_base
    corpus = TableCorpus(list(synthetic_tables(N_TABLES)))

    started = time.perf_counter()
    serial_mapping = SchemaMatcher(kb).match_corpus(corpus)
    serial_seconds = time.perf_counter() - started

    with ProcessExecutor(WORKERS) as executor:
        def parallel_run():
            return SchemaMatcher(kb, executor=executor).match_corpus(corpus)

        started = time.perf_counter()
        parallel_mapping = benchmark.pedantic(
            parallel_run, rounds=1, iterations=1
        )
        parallel_seconds = time.perf_counter() - started

    assert canonical_mapping(parallel_mapping) == canonical_mapping(
        serial_mapping
    ), "parallel schema matching diverged from serial"
    speedup = _report("schema matching", serial_seconds, parallel_seconds)
    if _speedup_required():
        assert speedup >= MIN_SPEEDUP, (
            f"ProcessExecutor(workers={WORKERS}) speedup {speedup:.2f}× "
            f"below the {MIN_SPEEDUP}× bar on {os.cpu_count()} CPUs"
        )


def test_parallel_clustering_equality(env):
    """Block-local similarity precompute changes nothing but wall clock."""
    kb = env.world.knowledge_base
    # A table subset keeps the quadratic clustering portion benchmark-sized.
    corpus = TableCorpus(list(synthetic_tables(max(200, N_TABLES // 25))))
    mapping = SchemaMatcher(kb).match_corpus(corpus)

    def cluster(executor=None):
        records = build_row_records(corpus, mapping, "Song")
        similarity = RowSimilarity(
            [LabelMetric(), BowMetric()],
            StaticWeightedAggregator({"LABEL": 0.7, "BOW": 0.3}, threshold=0.6),
        )
        clusterer = RowClusterer(similarity, executor=executor)
        return sorted(
            sorted(cluster.row_ids()) for cluster in clusterer.cluster(records)
        )

    started = time.perf_counter()
    serial_clusters = cluster()
    serial_seconds = time.perf_counter() - started

    with ProcessExecutor(WORKERS) as executor:
        started = time.perf_counter()
        parallel_clusters = cluster(executor)
        parallel_seconds = time.perf_counter() - started

    assert parallel_clusters == serial_clusters, (
        "parallel clustering diverged from serial"
    )
    _report("block-local clustering", serial_seconds, parallel_seconds)
