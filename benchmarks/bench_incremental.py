"""Benchmark: incremental runs after a 1% corpus delta vs full rebuilds.

The scenario is the production loop the incremental engine exists for: a
corpus of ``REPRO_BENCH_CORPUS_TABLES`` (default 5 000) web tables — a
small class-relevant core inside a large long tail of unrelated tables —
absorbs a 1% batch of new tables, and the pipeline must refresh its
output.  Two claims are verified:

1. **Speedup** — the incremental run after the delta completes at least
   ``MIN_SPEEDUP``× faster than a from-scratch rebuild over the same
   corpus: unchanged tables are served from the persistent artifact
   store (analysis, attribute maps), and downstream stages whose input
   fingerprints did not move are loaded whole.
2. **Byte-equality** — the incremental result's ``canonical_json()`` is
   identical to the full rebuild's, on every run (the differential
   harness proves this property in general; the benchmark re-checks it
   at scale).
"""

from __future__ import annotations

import os
import time
from typing import Iterator

from repro.api import RunSession
from repro.corpus.store import CorpusStore
from repro.io import save_knowledge_base
from repro.io.serialize import WORLD_KB_FILE
from repro.synthesis.api import build_world
from repro.synthesis.profiles import WorldScale
from repro.webtables.table import WebTable

N_TABLES = int(os.environ.get("REPRO_BENCH_CORPUS_TABLES", "5000"))

#: Fraction of the corpus arriving as the delta batch.
DELTA_FRACTION = 0.01

#: Required advantage of the incremental run over the full rebuild.  The
#: observed factor is far higher (the delta only re-analyzes 1% of the
#: tables); the gate is conservative so shared CI boxes cannot flake it.
MIN_SPEEDUP = 2.0

CLASS_NAME = "Song"


def _filler_tables(start: int, count: int) -> Iterator[WebTable]:
    """Deterministic long-tail tables that match no KB class."""
    for number in range(start, start + count):
        yield WebTable(
            table_id=f"longtail-{number:07d}",
            header=("widget", "batch", "lot", "grade"),
            rows=[
                (
                    f"widget {number} unit {row}",
                    f"batch {number % 83}",
                    str(100000 + number * 7 + row),
                    "ABCD"[row % 4],
                )
                for row in range(4)
            ],
            url=f"http://bench.example/longtail/{number}",
        )


def _timed_full_rebuild(store) -> tuple[float, str]:
    """Seconds and canonical bytes of a from-scratch run (no artifacts)."""
    session = RunSession.from_corpus_store(store, artifacts=False)
    started = time.perf_counter()
    result = session.run(CLASS_NAME, use_cache=False, executor="serial")
    return time.perf_counter() - started, result.canonical_json()


def test_one_percent_delta_beats_full_rebuild(benchmark, tmp_path):
    world = build_world(seed=11, scale=WorldScale(0.08), classes=[CLASS_NAME])
    core = list(world.corpus)
    n_filler = max(N_TABLES - len(core), 10)
    delta_size = max(int(N_TABLES * DELTA_FRACTION), 1)

    store = CorpusStore.create(tmp_path / "store", shards=4)
    store.ingest(core)
    store.ingest(_filler_tables(0, n_filler - delta_size), batch_size=512)
    save_knowledge_base(world.knowledge_base, store.directory / WORLD_KB_FILE)

    session = RunSession.from_corpus_store(store)
    base_started = time.perf_counter()
    session.run_incremental(CLASS_NAME, executor="serial")
    base_seconds = time.perf_counter() - base_started

    # The 1% delta arrives.
    report = store.ingest(
        _filler_tables(n_filler - delta_size, delta_size), batch_size=512
    )
    assert report.inserted == delta_size

    def incremental_run():
        started = time.perf_counter()
        result = session.run_incremental(
            CLASS_NAME, executor="serial", use_cache=False
        )
        return time.perf_counter() - started, result.canonical_json()

    incremental_seconds, incremental_blob = benchmark.pedantic(
        incremental_run, rounds=1, iterations=1
    )
    reuse = session.last_incremental_report

    full_seconds, full_blob = _timed_full_rebuild(store)

    print()
    print(
        f"corpus: {len(store)} tables; delta: {delta_size} tables "
        f"({DELTA_FRACTION:.0%})"
    )
    print(
        f"baseline (cold store) run: {base_seconds:.2f}s · "
        f"incremental after delta: {incremental_seconds:.2f}s · "
        f"full rebuild: {full_seconds:.2f}s "
        f"(speedup {full_seconds / incremental_seconds:.1f}x)"
    )
    print(reuse.summary())

    # Byte-equality: served artifacts are indistinguishable from computed.
    assert incremental_blob == full_blob

    # The store actually carried the reuse: only the delta re-analyzed.
    assert reuse.analysis_computed == delta_size
    assert reuse.analysis_loaded >= (len(store) - delta_size)

    # And it paid off end to end.
    assert incremental_seconds * MIN_SPEEDUP < full_seconds, (
        f"incremental run ({incremental_seconds:.2f}s) not "
        f"{MIN_SPEEDUP}x faster than full rebuild ({full_seconds:.2f}s)"
    )
