"""Benchmark: regenerates Figure 1 (pipeline stage flow)."""

from repro.experiments import figure01


def test_figure01(benchmark, env):
    result = benchmark.pedantic(figure01.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
