"""Benchmark: regenerates Table 1 (KB class profile)."""

from repro.experiments import table01


def test_table01(benchmark, env):
    result = benchmark.pedantic(table01.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
