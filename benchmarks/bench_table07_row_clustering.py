"""Benchmark: regenerates Table 7 (row clustering ablation).

Runs the cumulative-metric ablation on one held-out fold (the full 3-fold
version is available via ``table07.run(env)``; one fold keeps the bench
session tractable while preserving the ablation ordering).
"""

from repro.experiments import table07


def test_table07(benchmark, env):
    result = benchmark.pedantic(
        table07.run, args=(env,), kwargs={"folds": (0,)}, rounds=1, iterations=1
    )
    print()
    print(result.format())
    assert result.rows


def test_ablation_clustering_machinery(benchmark, env):
    """Ablation bench: blocking and KLj on/off (DESIGN.md §5)."""
    from repro.clustering import (
        RowClusterer, RowMetricContext, evaluate_clustering, make_row_metrics,
    )
    from repro.clustering.similarity import RowSimilarity

    class_name = "Song"
    __, test_gold = env.fold_golds(class_name, 0)
    artifacts = env.fold_run(class_name, 0).iterations[1]
    records = artifacts.records
    models = env.fold_models(class_name, 0)
    context = RowMetricContext.build(
        env.world.knowledge_base, class_name, records
    )
    gold_clusters = {
        cluster.cluster_id: list(cluster.row_ids)
        for cluster in test_gold.clusters
    }

    def run_variants():
        rows = []
        for label, kwargs in (
            ("greedy+klj+blocking", {}),
            ("greedy only", {"use_klj": False}),
            ("no blocking", {"use_blocking": False}),
            ("serial greedy", {"batch_size": 1}),
        ):
            similarity = RowSimilarity(
                make_row_metrics(
                    ("LABEL", "BOW", "PHI", "ATTRIBUTE", "IMPLICIT_ATT",
                     "SAME_TABLE"),
                    context,
                ),
                models.row_aggregator,
            )
            clusterer = RowClusterer(similarity, seed=7, **kwargs)
            clusters = clusterer.cluster(records)
            scores = evaluate_clustering(
                gold_clusters,
                {cluster.cluster_id: cluster.row_ids() for cluster in clusters},
            )
            rows.append((label, scores.penalized_precision,
                         scores.average_recall, scores.f1))
        return rows

    rows = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    print()
    for label, pcp, ar, f1 in rows:
        print(f"  {label:22s} PCP={pcp:.3f} AR={ar:.3f} F1={f1:.3f}")
    assert rows
