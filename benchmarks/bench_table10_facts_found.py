"""Benchmark: regenerates Table 10 (facts found / fusion scoring)."""

from repro.experiments import table10


def test_table10(benchmark, env):
    result = benchmark.pedantic(table10.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
