"""Shared benchmark environment.

All benchmarks share one cached :class:`ExperimentEnv` so the expensive
artifacts (world, gold standards, trained models, pipeline runs) are built
once per session.  ``REPRO_BENCH_SCALE`` scales the world (default 0.25,
which reproduces every table's shape in minutes; use 1.0 for the
full-scale run).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.env import get_env

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


@pytest.fixture(scope="session")
def env():
    return get_env(seed=BENCH_SEED, scale_factor=BENCH_SCALE)
