"""Benchmark: regenerates Table 3 (corpus shape statistics)."""

from repro.experiments import table03


def test_table03(benchmark, env):
    result = benchmark.pedantic(table03.run, args=(env,), rounds=1, iterations=1)
    print()
    print(result.format())
    assert result.rows
