"""Benchmark: the similarity-kernel optimization layer.

Three claims, each verified against the kept-verbatim reference
implementation (value equality is asserted *before* any timing is
trusted — see :mod:`repro.perf.bench`):

1. **Fuzzy token expansion** — the SymSpell-style deletion-neighborhood
   lookup inside :meth:`InvertedIndex.similar_tokens` returns exactly
   the prefix-bucket scan's result set and is ≥ 3× faster
   (``REPRO_BENCH_MIN_FUZZY_SPEEDUP``) on a 20k-token vocabulary.
2. **Bounded edit distance** — ``levenshtein_within(a, b, 1)`` equals
   thresholding the full distance and is faster.
3. **Block-local pair scoring** — the memoized LABEL kernel scores the
   within-block pairs of a 5 000-table record set identically to the
   unmemoized bundle and ≥ 2× faster
   (``REPRO_BENCH_MIN_PAIR_SPEEDUP``).

The measured numbers are persisted to ``BENCH_kernels.json`` at the repo
root — the perf trajectory future PRs (and the CI perf-smoke gate)
compare against.  ``REPRO_BENCH_CORPUS_TABLES`` / ``REPRO_BENCH_VOCAB``
scale the workload; ``REPRO_BENCH_OUTPUT`` redirects the artifact.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.perf.bench import (
    KERNEL_BENCH_FILE,
    compare_with_baseline,
    load_bench_file,
    run_kernel_benchmarks,
    write_bench_file,
)

N_TABLES = int(os.environ.get("REPRO_BENCH_CORPUS_TABLES", "5000"))
VOCAB = int(os.environ.get("REPRO_BENCH_VOCAB", "20000"))
MIN_FUZZY_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_FUZZY_SPEEDUP", "3.0"))
MIN_PAIR_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_PAIR_SPEEDUP", "2.0"))
REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = Path(os.environ.get("REPRO_BENCH_OUTPUT", REPO_ROOT / KERNEL_BENCH_FILE))


def test_kernel_benchmarks_meet_floors_and_persist_trajectory():
    document = run_kernel_benchmarks(n_tables=N_TABLES, vocabulary_size=VOCAB)
    benchmarks = document["benchmarks"]
    for name, entry in benchmarks.items():
        print(
            f"\n{name}: reference {entry['reference_seconds']:.3f}s vs "
            f"optimized {entry['optimized_seconds']:.3f}s "
            f"→ {entry['speedup']:.2f}×"
        )

    fuzzy = benchmarks["similar_tokens"]["speedup"]
    assert fuzzy >= MIN_FUZZY_SPEEDUP, (
        f"fuzzy expansion speedup {fuzzy:.2f}x fell below the "
        f"{MIN_FUZZY_SPEEDUP}x floor"
    )
    pair = benchmarks["pair_scoring"]["speedup"]
    assert pair >= MIN_PAIR_SPEEDUP, (
        f"block-local pair scoring speedup {pair:.2f}x fell below the "
        f"{MIN_PAIR_SPEEDUP}x floor"
    )
    bounded = benchmarks["levenshtein_within"]["speedup"]
    assert bounded >= 1.0, (
        f"bounded levenshtein is slower than the reference ({bounded:.2f}x)"
    )

    # Trajectory gate: measured speedups must not collapse to less than
    # half of the committed baseline's (ratios are machine-portable, so
    # this also holds on CI runners with different absolute seconds).
    failures = compare_with_baseline(
        document, load_bench_file(REPO_ROOT / KERNEL_BENCH_FILE)
    )
    assert not failures, "; ".join(failures)

    written = write_bench_file(OUTPUT, document)
    print(f"trajectory written to {written}")
