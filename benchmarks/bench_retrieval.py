"""Benchmark: the fast candidate path (retrieve-then-rerank recall layer).

Two claims, measured against the exact scan on the same label index:

1. **Recall** — fast mode's top-k contains the exact top-k at a mean
   recall@k of at least ``REPRO_BENCH_RETRIEVAL_RECALL_FLOOR`` (default
   0.95, the committed :data:`repro.retrieval.gate.RECALL_FLOOR`) on
   *both* workloads — a stem-skewed label vocabulary (the blocking
   shape) and the corpus-scale schema-match candidate workload.
2. **Speedup** — on the 5 000-table schema-match workload, fast mode is
   at least ``REPRO_BENCH_MIN_RETRIEVAL_SPEEDUP`` (default 2×) faster
   than the exact scan, recall-stage build included in the run.

The measured document is persisted to ``BENCH_retrieval.json`` at the
repo root.  Its ``gate`` block is load-bearing: ``candidate_mode='fast'``
is *refused* at configuration time unless the committed document's gate
passed (:func:`repro.retrieval.gate.ensure_fast_mode_allowed`) — this
benchmark is how approximation earns its flag.

``REPRO_BENCH_RETRIEVAL_TABLES`` / ``REPRO_BENCH_RETRIEVAL_LABELS`` /
``REPRO_BENCH_RETRIEVAL_QUERIES`` scale the workload
(``REPRO_BENCH_CORPUS_TABLES`` is honoured as a fallback so the CI
smoke profile scales every benchmark with one knob);
``REPRO_BENCH_OUTPUT`` redirects the artifact.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

pytest.importorskip("numpy", reason="fast candidate generation needs numpy")

from repro.perf.bench import (
    RETRIEVAL_BENCH_FILE,
    compare_with_baseline,
    load_bench_file,
    run_retrieval_benchmarks,
    write_bench_file,
)
from repro.retrieval.gate import RECALL_FLOOR

N_TABLES = int(
    os.environ.get(
        "REPRO_BENCH_RETRIEVAL_TABLES",
        os.environ.get("REPRO_BENCH_CORPUS_TABLES", "5000"),
    )
)
VOCAB = int(os.environ.get("REPRO_BENCH_RETRIEVAL_LABELS", "8000"))
N_QUERIES = int(os.environ.get("REPRO_BENCH_RETRIEVAL_QUERIES", "400"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_RETRIEVAL_SPEEDUP", "2.0"))
FLOOR = float(
    os.environ.get("REPRO_BENCH_RETRIEVAL_RECALL_FLOOR", str(RECALL_FLOOR))
)
REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = Path(
    os.environ.get("REPRO_BENCH_OUTPUT", REPO_ROOT / RETRIEVAL_BENCH_FILE)
)


def test_retrieval_benchmarks_meet_gate_and_persist_trajectory():
    document = run_retrieval_benchmarks(
        n_tables=N_TABLES,
        vocabulary_size=VOCAB,
        n_queries=N_QUERIES,
        recall_floor=FLOOR,
        min_speedup=MIN_SPEEDUP,
    )
    benchmarks = document["benchmarks"]
    for name, entry in benchmarks.items():
        print(
            f"\n{name}: exact {entry['reference_seconds']:.3f}s vs "
            f"fast {entry['optimized_seconds']:.3f}s "
            f"(+{entry['build_seconds']:.3f}s build) "
            f"→ {entry['speedup']:.2f}×, recall@{entry['k']} "
            f"{entry['recall_at_k']:.4f}"
        )

    gate = document["gate"]
    for name, entry in benchmarks.items():
        assert entry["recall_at_k"] >= FLOOR, (
            f"{name}: recall@{entry['k']} {entry['recall_at_k']:.4f} fell "
            f"below the {FLOOR} floor — fast mode must not be admitted"
        )
    speedup = benchmarks["schema_match_candidates"]["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"schema-match candidate speedup {speedup:.2f}x fell below the "
        f"{MIN_SPEEDUP}x floor"
    )
    assert gate["passed"], f"gate did not pass: {gate}"

    # Trajectory gate: the measured speedup must not collapse to less
    # than half of the committed baseline's (ratios are machine-portable
    # even when absolute seconds are not).
    failures = compare_with_baseline(
        document, load_bench_file(REPO_ROOT / RETRIEVAL_BENCH_FILE)
    )
    assert not failures, "; ".join(failures)

    written = write_bench_file(OUTPUT, document)
    print(f"trajectory written to {written}")
