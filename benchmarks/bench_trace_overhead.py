"""Benchmark: end-to-end tracing overhead on the store-backed pipeline.

Tracing is only free to leave on if it is actually cheap, so this
benchmark measures the same pipeline run twice over a corpus of
``REPRO_BENCH_CORPUS_TABLES`` (default 5 000) web tables — once bare,
once with ``trace=`` recording the full span tree (run → iteration →
stage → executor chunks, kernel-counter deltas, NDJSON flushed line by
line) — and gates the wall-clock delta.  Runs are interleaved
(untraced/traced pairs) so drift on a shared box biases both sides
equally, and the best round per side is compared, the standard idiom
for noisy-neighbour machines.

Two claims are verified:

1. **Byte-neutrality at scale** — the traced run's ``canonical_json()``
   is identical to the untraced one's (the differential harness proves
   this on the seed fixtures; the benchmark re-checks at scale).
2. **Bounded overhead** — tracing costs at most ``TRACE_MAX_OVERHEAD``
   (default 15%, deliberately loose so shared CI boxes cannot flake it;
   the measured number — committed in ``BENCH_trace.json`` — is the
   real claim, historically well under 5%).

``REPRO_BENCH_TRACE_OUTPUT`` redirects the persisted document;
``REPRO_BENCH_TRACE_ROUNDS`` adds measurement pairs.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Iterator

from repro.api import RunSession
from repro.corpus.store import CorpusStore
from repro.io import save_knowledge_base
from repro.io.serialize import WORLD_KB_FILE
from repro.obs import trace_summary
from repro.perf.bench import write_bench_file
from repro.synthesis.api import build_world
from repro.synthesis.profiles import WorldScale
from repro.webtables.table import WebTable

N_TABLES = int(os.environ.get("REPRO_BENCH_CORPUS_TABLES", "5000"))
ROUNDS = int(os.environ.get("REPRO_BENCH_TRACE_ROUNDS", "2"))

#: In-run gate on traced/untraced wall clock.  Loose by design — the
#: committed measurement is the documentation; the gate only catches a
#: tracing path that became accidentally hot (per-row work, unbuffered
#: I/O in a loop, ...).
TRACE_MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_TRACE_MAX", "0.15"))

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = Path(
    os.environ.get("REPRO_BENCH_TRACE_OUTPUT", REPO_ROOT / "BENCH_trace.json")
)

CLASS_NAME = "Song"


def _filler_tables(count: int) -> Iterator[WebTable]:
    """Deterministic long-tail tables that match no KB class."""
    for number in range(count):
        yield WebTable(
            table_id=f"longtail-{number:07d}",
            header=("widget", "batch", "lot", "grade"),
            rows=[
                (
                    f"widget {number} unit {row}",
                    f"batch {number % 83}",
                    str(100000 + number * 7 + row),
                    "ABCD"[row % 4],
                )
                for row in range(4)
            ],
            url=f"http://bench.example/longtail/{number}",
        )


def test_tracing_overhead_is_bounded(benchmark, tmp_path):
    world = build_world(seed=11, scale=WorldScale(0.08), classes=[CLASS_NAME])
    core = list(world.corpus)
    store = CorpusStore.create(tmp_path / "store", shards=4)
    store.ingest(core)
    store.ingest(_filler_tables(max(N_TABLES - len(core), 10)), batch_size=512)
    save_knowledge_base(world.knowledge_base, store.directory / WORLD_KB_FILE)

    session = RunSession.from_corpus_store(store, artifacts=False)
    # One warmup run primes lazily-built session state (corpus view,
    # label index, models) that is shared by both measured variants.
    session.run(CLASS_NAME, use_cache=False, executor="serial")

    log_path = tmp_path / "trace.ndjson"

    def run_once(trace):
        started = time.perf_counter()
        result = session.run(
            CLASS_NAME, use_cache=False, executor="serial", trace=trace
        )
        return time.perf_counter() - started, result.canonical_json()

    untraced_rounds: list[float] = []
    traced_rounds: list[float] = []
    blobs: set[str] = set()
    for round_number in range(ROUNDS):
        seconds, blob = run_once(None)
        untraced_rounds.append(seconds)
        blobs.add(blob)
        if round_number < ROUNDS - 1:
            seconds, blob = run_once(log_path)
        else:
            # The last traced round doubles as the pytest-benchmark
            # measurement, so `--benchmark-*` reporting keeps working.
            seconds, blob = benchmark.pedantic(
                run_once, args=(log_path,), rounds=1, iterations=1
            )
        traced_rounds.append(seconds)
        blobs.add(blob)

    assert len(blobs) == 1, "tracing must not change canonical output"

    untraced = min(untraced_rounds)
    traced = min(traced_rounds)
    overhead = traced / untraced - 1.0
    events = session.last_trace.events()
    summary = trace_summary(events)

    benchmark.extra_info.update(
        {
            "tables": len(store),
            "untraced_seconds": round(untraced, 3),
            "traced_seconds": round(traced, 3),
            "overhead_pct": round(overhead * 100.0, 2),
        }
    )

    print()
    print(
        f"corpus: {len(store)} tables · untraced: {untraced:.2f}s · "
        f"traced: {traced:.2f}s · overhead: {overhead:+.2%} "
        f"({len(events)} events, {summary['spans']} spans)"
    )

    document = {
        "scenario": {
            "class": CLASS_NAME,
            "tables": len(store),
            "rounds": ROUNDS,
            "executor": "serial",
        },
        "untraced_seconds": round(untraced, 3),
        "traced_seconds": round(traced, 3),
        "overhead_pct": round(overhead * 100.0, 2),
        "max_overhead_pct": round(TRACE_MAX_OVERHEAD * 100.0, 2),
        "events": len(events),
        "trace": summary,
        "byte_identical": True,
    }
    write_bench_file(OUTPUT, document)
    print(f"trajectory written to {OUTPUT}")

    assert overhead <= TRACE_MAX_OVERHEAD, (
        f"tracing overhead {overhead:.2%} exceeds the "
        f"{TRACE_MAX_OVERHEAD:.0%} gate"
    )
