"""Picklable batch functions for the queue-executor tests.

Queue tasks travel to worker processes as pickles, which serialize
functions *by module reference* — so every batch function the tests
submit must live in an importable module, not in a test body.  Worker
subprocesses are launched with this directory on ``PYTHONPATH`` so they
can resolve these names.

The control-file functions coordinate the worker-kill choreography:
items are ``(value, control_dir)`` pairs, and the batch announces
itself by creating ``started-<pid>`` in the control directory, then
holds until the ``hold`` marker disappears.  That lets a test wait
until a *specific* worker owns the chunk, kill it mid-execution, and
release the retry to run to completion elsewhere.
"""

from __future__ import annotations

import os
import time
from pathlib import Path


def square_batch(chunk: list[int]) -> list[int]:
    return [value * value for value in chunk]


def explode_on_seven(chunk: list[int]) -> list[int]:
    for value in chunk:
        if value == 7:
            raise ValueError("seven is right out")
    return chunk


def timed_square(chunk: list[int]) -> tuple[dict, list[int]]:
    """Spool-protocol shape (``meta, results``) for direct enqueueing.

    ``run_worker`` unpickles ``(callable, chunk)`` and expects the
    callable to return a ``(meta, results)`` pair the way the executor's
    timing wrapper does; tests that drive the spool without a
    ``QueueExecutor`` (the chaos suite) enqueue this instead.  The meta
    is empty on purpose: the chaos suite compares whole result pickles
    byte for byte across a crash-and-retry, so nothing process-specific
    may leak into them.
    """
    return {}, [value * value for value in chunk]


def timed_holding(chunk: list[tuple[int, str]]) -> tuple[dict, list[int]]:
    """``holding_batch`` in the spool-protocol ``(meta, results)`` shape."""
    return {}, holding_batch(chunk)


def holding_batch(chunk: list[tuple[int, str]]) -> list[int]:
    """Announce, wait out the ``hold`` marker, then square the values."""
    control_dir = Path(chunk[0][1])
    started = control_dir / f"started-{os.getpid()}"
    started.write_text(str(os.getpid()), encoding="utf-8")
    deadline = time.monotonic() + 60.0
    while (control_dir / "hold").exists():
        if time.monotonic() > deadline:  # pragma: no cover - safety net
            raise RuntimeError("hold marker never released")
        time.sleep(0.02)
    return [value * value for value, _ in chunk]
