"""Unit and property tests for row clustering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering import (
    Cluster,
    RowClusterer,
    build_blocks,
    evaluate_clustering,
    greedy_correlation_clustering,
    klj_refine,
)
from repro.clustering.metrics import BowMetric, LabelMetric, SameTableMetric
from repro.clustering.phi import PhiVectorizer, cosine_sparse
from repro.clustering.similarity import RowSimilarity
from repro.matching.records import RowRecord
from repro.ml.aggregation import StaticWeightedAggregator
from repro.text.tokenize import tokenize
from repro.text.vectors import term_vector


def make_record(table_id: str, index: int, label: str, values=None) -> RowRecord:
    return RowRecord(
        row_id=(table_id, index),
        table_id=table_id,
        label=label,
        norm_label=label.lower(),
        tokens=term_vector([label]),
        values=values or {},
        label_tokens=tuple(tokenize(label)),
    )


def label_similarity_fn() -> RowSimilarity:
    aggregator = StaticWeightedAggregator({"LABEL": 1.0}, threshold=0.8)
    return RowSimilarity([LabelMetric()], aggregator)


class TestMetrics:
    def test_label_metric_identical(self):
        a = make_record("t1", 0, "John Smith")
        b = make_record("t2", 0, "Smith, John")
        score, confidence = LabelMetric().compute(a, b)
        assert score > 0.9
        assert confidence == 1.0

    def test_bow_metric_overlap(self):
        a = make_record("t1", 0, "John Smith Packers")
        b = make_record("t2", 0, "John Smith Bears")
        score, __ = BowMetric().compute(a, b)
        assert 0.0 < score < 1.0

    def test_same_table_metric(self):
        a = make_record("t1", 0, "X")
        b = make_record("t1", 1, "Y")
        c = make_record("t2", 0, "Z")
        assert SameTableMetric().compute(a, b)[0] == 0.0
        assert SameTableMetric().compute(a, c)[0] == 1.0


class TestPhi:
    def test_cooccurring_labels_correlate(self):
        vectorizer = PhiVectorizer().fit(
            {
                "t1": ["a", "b"],
                "t2": ["a", "b"],
                "t3": ["c", "d"],
                "t4": ["c", "d"],
            }
        )
        same_theme = vectorizer.table_similarity("t1", "t2")
        cross_theme = vectorizer.table_similarity("t1", "t3")
        assert same_theme > cross_theme

    def test_cosine_sparse_empty(self):
        assert cosine_sparse({}, {"a": 1.0}) == 0.0

    def test_cosine_sparse_identical(self):
        vector = {"a": 0.5, "b": -0.2}
        assert cosine_sparse(vector, vector) == pytest.approx(1.0)


class TestBlocking:
    def test_same_label_shares_block(self):
        records = [
            make_record("t1", 0, "John Smith"),
            make_record("t2", 0, "John Smith"),
            make_record("t3", 0, "Completely Different"),
        ]
        blocks = build_blocks(records)
        assert blocks[("t1", 0)] & blocks[("t2", 0)]

    def test_typo_labels_share_block(self):
        records = [
            make_record("t1", 0, "Jonathan Smithers"),
            make_record("t2", 0, "Jonathan Smitherz"),
        ]
        blocks = build_blocks(records)
        assert blocks[("t1", 0)] & blocks[("t2", 0)]

    def test_precomputed_index_skips_rebuild(self, monkeypatch):
        """A supplied index is searched as-is; no LabelIndex is rebuilt."""
        from repro.clustering import blocking
        from repro.index import LabelIndex

        records = [
            make_record("t1", 0, "Jonathan Smithers"),
            make_record("t2", 0, "Jonathan Smitherz"),
        ]
        prebuilt = LabelIndex()
        for record in records:
            prebuilt.add(record.norm_label, record.norm_label)
        expected = build_blocks(records)

        def forbidden():
            raise AssertionError("build_blocks rebuilt the label index")

        monkeypatch.setattr(blocking, "LabelIndex", forbidden)
        assert blocking.build_blocks(records, index=prebuilt) == expected

    def test_corpus_label_index_as_block_source(self, tiny_world):
        """The incremental CorpusLabelIndex slots in as the block source.

        Corpus-wide labels may add inert block keys, but rows with
        identical labels still meet.
        """
        from repro.corpus.indexing import CorpusLabelIndex

        index = CorpusLabelIndex.build(
            tiny_world.corpus.get(table_id)
            for table_id in tiny_world.corpus.table_ids()[:20]
        )
        records = [
            make_record("t1", 0, "Jonathan Smithers"),
            make_record("t2", 0, "Jonathan Smithers"),
        ]
        blocks = build_blocks(records, index=index)
        assert blocks[("t1", 0)] & blocks[("t2", 0)]


class TestGreedy:
    def test_serial_groups_identical_labels(self):
        records = [
            make_record("t1", 0, "Alpha One"),
            make_record("t2", 0, "Alpha One"),
            make_record("t3", 0, "Beta Two"),
            make_record("t4", 0, "Beta Two"),
        ]
        similarity = label_similarity_fn()
        blocks = build_blocks(records)
        clusters = greedy_correlation_clustering(
            records, similarity, blocks, batch_size=1, seed=1
        )
        sizes = sorted(len(cluster) for cluster in clusters)
        assert sizes == [2, 2]

    def test_batch_fragments_then_klj_repairs(self):
        # A whole batch sees an empty snapshot → every row starts its own
        # cluster (the deterministic stand-in for parallel stale reads);
        # the KLj pass joins them back.
        records = [
            make_record("t1", 0, "Alpha One"),
            make_record("t2", 0, "Alpha One"),
            make_record("t3", 0, "Beta Two"),
            make_record("t4", 0, "Beta Two"),
        ]
        similarity = label_similarity_fn()
        blocks = build_blocks(records)
        fragmented = greedy_correlation_clustering(
            records, similarity, blocks, batch_size=4, seed=1
        )
        assert len(fragmented) == 4
        refined = klj_refine(fragmented, similarity, blocks)
        assert sorted(len(cluster) for cluster in refined) == [2, 2]

    def test_every_row_in_exactly_one_cluster(self):
        records = [make_record("t", i, f"Label {i % 3} Thing") for i in range(12)]
        similarity = label_similarity_fn()
        blocks = build_blocks(records)
        clusters = greedy_correlation_clustering(records, similarity, blocks, seed=2)
        all_rows = [row for cluster in clusters for row in cluster.row_ids()]
        assert sorted(all_rows) == sorted(record.row_id for record in records)

    def test_batch_one_equals_serial(self):
        records = [make_record("t", i, f"L{i % 4} name") for i in range(8)]
        similarity = label_similarity_fn()
        blocks = build_blocks(records)
        serial = greedy_correlation_clustering(
            records, similarity, blocks, batch_size=1, seed=3
        )
        assert all(len(cluster) >= 1 for cluster in serial)

    def test_deterministic(self):
        records = [make_record("t", i, f"Label {i % 3}") for i in range(9)]
        similarity = label_similarity_fn()
        blocks = build_blocks(records)
        a = greedy_correlation_clustering(records, similarity, blocks, seed=4)
        b = greedy_correlation_clustering(records, similarity, blocks, seed=4)
        assert [c.row_ids() for c in a] == [c.row_ids() for c in b]


class TestKLj:
    def test_repairs_batch_splits(self):
        # Same-entity rows land in one batch → split clusters; KLj joins.
        records = [make_record(f"t{i}", 0, "Same Entity Name") for i in range(6)]
        similarity = label_similarity_fn()
        blocks = build_blocks(records)
        clusters = greedy_correlation_clustering(
            records, similarity, blocks, batch_size=6, seed=0
        )
        assert len(clusters) > 1  # the parallel error happened
        refined = klj_refine(clusters, similarity, blocks)
        assert len(refined) == 1

    def test_splits_negative_rows(self):
        good = [make_record(f"t{i}", 0, "Shared Name") for i in range(3)]
        stray = make_record("t9", 0, "Unrelated Thing")
        cluster = Cluster("c1", members=good + [stray], blocks=set())
        similarity = label_similarity_fn()
        refined = klj_refine([cluster], similarity, {})
        assert len(refined) == 2
        sizes = sorted(len(c) for c in refined)
        assert sizes == [1, 3]

    def test_preserves_row_universe(self):
        records = [make_record("t", i, f"N{i % 2} x") for i in range(6)]
        similarity = label_similarity_fn()
        blocks = build_blocks(records)
        clusters = greedy_correlation_clustering(records, similarity, blocks, seed=1)
        refined = klj_refine(clusters, similarity, blocks)
        rows = sorted(row for c in refined for row in c.row_ids())
        assert rows == sorted(record.row_id for record in records)


class TestClusterer:
    def test_end_to_end(self):
        records = [
            make_record("t1", 0, "Alpha Song"),
            make_record("t2", 0, "Alpha Song"),
            make_record("t3", 0, "Gamma Tune"),
        ]
        clusterer = RowClusterer(label_similarity_fn(), seed=5)
        clusters = clusterer.cluster(records)
        assert len(clusters) == 2

    def test_empty_input(self):
        assert RowClusterer(label_similarity_fn()).cluster([]) == []

    def test_no_blocking_equivalent_result(self):
        records = [make_record("t", i, f"Label {i % 2} q") for i in range(6)]
        with_blocking = RowClusterer(label_similarity_fn(), seed=6).cluster(records)
        without = RowClusterer(
            label_similarity_fn(), seed=6, use_blocking=False
        ).cluster(records)
        sizes_a = sorted(len(c) for c in with_blocking)
        sizes_b = sorted(len(c) for c in without)
        assert sizes_a == sizes_b


class TestEvaluation:
    def test_perfect_clustering(self):
        gold = {"g1": [("t", 0), ("t", 1)], "g2": [("t", 2)]}
        scores = evaluate_clustering(gold, gold)
        assert scores.f1 == 1.0
        assert scores.penalty == 1.0

    def test_overmerged_penalized(self):
        gold = {"g1": [("t", 0)], "g2": [("t", 1)]}
        returned = {"c1": [("t", 0), ("t", 1)]}
        scores = evaluate_clustering(gold, returned)
        assert scores.pair_precision == 0.0
        assert scores.penalty == 0.5

    def test_oversplit_penalized(self):
        gold = {"g1": [("t", 0), ("t", 1)]}
        returned = {"c1": [("t", 0)], "c2": [("t", 1)]}
        scores = evaluate_clustering(gold, returned)
        assert scores.penalty == 0.5
        assert scores.average_recall == 0.5

    def test_rows_outside_gold_ignored(self):
        gold = {"g1": [("t", 0)]}
        returned = {"c1": [("t", 0), ("t", 99)]}
        scores = evaluate_clustering(gold, returned)
        assert scores.f1 == 1.0

    @given(st.integers(2, 12), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_scores_bounded(self, n_rows, seed):
        import random

        rng = random.Random(seed)
        rows = [("t", i) for i in range(n_rows)]
        gold = {}
        returned = {}
        for row in rows:
            gold.setdefault(f"g{rng.randrange(3)}", []).append(row)
            returned.setdefault(f"c{rng.randrange(3)}", []).append(row)
        scores = evaluate_clustering(gold, returned)
        for value in (
            scores.penalized_precision, scores.average_recall, scores.f1,
            scores.pair_precision, scores.penalty,
        ):
            assert 0.0 <= value <= 1.0
