"""Integration tests: full pipeline runs and the Section 4-6 evaluations."""

from __future__ import annotations

import pytest

from repro.newdetect.detector import Classification, DetectionResult
from repro.pipeline import (
    LongTailPipeline,
    evaluate_facts_found,
    evaluate_new_instances_found,
    gold_clusters_to_row_clusters,
    map_entities_to_gold,
    mapping_from_gold,
    rank_new_entities,
    ranked_evaluation,
    records_from_gold,
)
from repro.pipeline.pipeline import PipelineConfig
from repro.fusion.entity import Entity
from repro.goldstandard.annotations import LABEL_COLUMN


@pytest.fixture(scope="module")
def song_run(tiny_world, song_gold):
    """One default-pipeline run on the Song gold standard tables."""
    pipeline = LongTailPipeline.default(tiny_world.knowledge_base)
    return pipeline.run(
        tiny_world.corpus,
        "Song",
        table_ids=list(song_gold.table_ids),
        row_ids=set(song_gold.annotated_rows()),
        known_classes={table_id: "Song" for table_id in song_gold.table_ids},
    )


class TestGoldUtils:
    def test_mapping_from_gold_label_columns(self, tiny_world, song_gold):
        mapping = mapping_from_gold(song_gold, tiny_world.knowledge_base)
        label_columns = [
            (key, value)
            for key, value in song_gold.attribute_correspondences.items()
            if value == LABEL_COLUMN
        ]
        for (table_id, column), __ in label_columns[:10]:
            assert mapping.table(table_id).label_column == column

    def test_records_from_gold_cover_annotated_rows(self, tiny_world, song_gold):
        records = records_from_gold(
            tiny_world.corpus, song_gold, tiny_world.knowledge_base
        )
        annotated = set(song_gold.annotated_rows())
        assert {record.row_id for record in records} <= annotated
        # Nearly every annotated row should survive projection.
        assert len(records) > 0.9 * len(annotated)

    def test_gold_clusters_to_row_clusters(self, tiny_world, song_gold):
        records = records_from_gold(
            tiny_world.corpus, song_gold, tiny_world.knowledge_base
        )
        clusters = gold_clusters_to_row_clusters(song_gold, records)
        gold_ids = {cluster.cluster_id for cluster in song_gold.clusters}
        assert {cluster.cluster_id for cluster in clusters} <= gold_ids


class TestPipelineRun:
    def test_two_iterations(self, song_run):
        assert len(song_run.iterations) == 2
        assert song_run.final.iteration == 2

    def test_every_record_clustered_once(self, song_run):
        final = song_run.final
        clustered = [
            row for cluster in final.clusters for row in cluster.row_ids()
        ]
        assert sorted(clustered) == sorted(
            record.row_id for record in final.records
        )

    def test_every_cluster_becomes_entity(self, song_run):
        final = song_run.final
        assert len(final.entities) == len(
            [cluster for cluster in final.clusters if cluster.members]
        )

    def test_every_entity_classified(self, song_run):
        final = song_run.final
        for entity in final.entities:
            assert entity.entity_id in final.detection.classifications

    def test_existing_entities_have_correspondences(self, song_run):
        final = song_run.final
        for entity_id in final.detection.existing_entity_ids():
            assert entity_id in final.detection.correspondences

    def test_summary_mentions_class(self, song_run):
        assert "Song" in song_run.summary()

    def test_untrained_pipeline_requires_models(self, tiny_world):
        pipeline = LongTailPipeline(tiny_world.knowledge_base, PipelineConfig())
        with pytest.raises(RuntimeError):
            pipeline.run(tiny_world.corpus, "Song")


class TestSection4Evaluations:
    def test_new_instances_eval_bounds(self, song_run, song_gold):
        scores = evaluate_new_instances_found(
            song_run.final.entities, song_run.final.detection, song_gold
        )
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
        assert scores.gold_new == len(song_gold.new_clusters())

    def test_facts_eval_bounds(self, song_run, song_gold, tiny_world):
        scores = evaluate_facts_found(
            song_run.final.entities, song_run.final.detection, song_gold,
            tiny_world.knowledge_base,
        )
        assert 0.0 <= scores.f1 <= 1.0

    def test_entity_mapping_majority_conditions(self, song_gold, tiny_world):
        records = records_from_gold(
            tiny_world.corpus, song_gold, tiny_world.knowledge_base
        )
        clusters = gold_clusters_to_row_clusters(song_gold, records)
        from repro.fusion import EntityCreator, VotingScorer

        creator = EntityCreator(tiny_world.knowledge_base, "Song", VotingScorer())
        entities = creator.create(clusters)
        mapping = map_entities_to_gold(entities, song_gold)
        # Entities built directly from gold clusters must map back to them.
        mapped = [value for value in mapping.values() if value is not None]
        assert len(mapped) >= 0.9 * len(entities)


class TestDedupFlag:
    def test_dedup_never_increases_new_entities(self, tiny_world, song_gold):
        from repro.pipeline.pipeline import PipelineConfig

        config = PipelineConfig(dedup_new_entities=True)
        pipeline = LongTailPipeline.default(tiny_world.knowledge_base, config)
        deduped = pipeline.run(
            tiny_world.corpus,
            "Song",
            table_ids=list(song_gold.table_ids),
            row_ids=set(song_gold.annotated_rows()),
            known_classes={table_id: "Song" for table_id in song_gold.table_ids},
        )
        baseline = LongTailPipeline.default(tiny_world.knowledge_base).run(
            tiny_world.corpus,
            "Song",
            table_ids=list(song_gold.table_ids),
            row_ids=set(song_gold.annotated_rows()),
            known_classes={table_id: "Song" for table_id in song_gold.table_ids},
        )
        assert len(deduped.new_entities()) <= len(baseline.new_entities())
        # Classifications stay consistent: every surviving entity classified.
        final = deduped.final
        for entity in final.entities:
            assert entity.entity_id in final.detection.classifications


class TestRanking:
    def test_no_candidate_entities_rank_first(self):
        entities = [
            Entity("e1", "Song", ("A",)), Entity("e2", "Song", ("B",)),
        ]
        detection = DetectionResult(
            classifications={
                "e1": Classification.NEW, "e2": Classification.NEW,
            },
            best_scores={"e1": 0.4, "e2": None},
        )
        assert rank_new_entities(entities, detection) == ["e2", "e1"]

    def test_ranked_evaluation_perfect(self):
        scores = ranked_evaluation(["a", "b"], {"a": True, "b": True})
        assert scores.map_at_cutoff == 1.0
        assert scores.precision_at_5 == 1.0

    def test_ranked_evaluation_interleaved(self):
        ranking = ["a", "b", "c", "d"]
        relevant = {"a": True, "b": False, "c": True, "d": False}
        scores = ranked_evaluation(ranking, relevant)
        assert scores.map_at_cutoff == pytest.approx((1.0 + 2 / 3) / 2)

    def test_cutoff_respected(self):
        ranking = [f"e{i}" for i in range(300)]
        scores = ranked_evaluation(ranking, {}, cutoff=256)
        assert scores.n_ranked == 256
