"""Unit and property tests for the string toolkit."""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.text import (
    binary_cosine,
    clean_cell,
    jaccard,
    label_similarity,
    levenshtein,
    levenshtein_similarity,
    levenshtein_within,
    monge_elkan,
    monge_elkan_symmetric,
    monge_elkan_symmetric_memo,
    normalize_label,
    term_vector,
    tokenize,
)


class TestCleanCell:
    def test_none_becomes_empty(self):
        assert clean_cell(None) == ""

    def test_whitespace_collapsed(self):
        assert clean_cell("  a \t b\n c ") == "a b c"

    def test_accents_folded(self):
        assert clean_cell("Mönchengladbach") == "Monchengladbach"

    def test_non_string_coerced(self):
        assert clean_cell(42) == "42"


class TestNormalizeLabel:
    def test_lowercases_and_strips_punctuation(self):
        assert normalize_label("Smith, John!") == "smith john"

    def test_empty_input(self):
        assert normalize_label("") == ""
        assert normalize_label(None) == ""

    def test_idempotent(self):
        once = normalize_label("The  Long-Road (song)")
        assert normalize_label(once) == once


class TestTokenize:
    def test_basic_split(self):
        assert tokenize("Green Day - 21 Guns") == ["green", "day", "21", "guns"]

    def test_none_yields_empty(self):
        assert tokenize(None) == []

    def test_punctuation_only(self):
        assert tokenize("...!!!") == []


class TestLevenshtein:
    def test_identity(self):
        assert levenshtein("kitten", "kitten") == 0

    def test_known_distance(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_vs_word(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_similarity_bounds(self):
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=10), st.text(max_size=10), st.text(max_size=10))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_similarity_in_unit_interval(self, a, b):
        assert 0.0 <= levenshtein_similarity(a, b) <= 1.0


class TestLevenshteinWithin:
    """The banded kernel must agree with the reference *everywhere*."""

    def test_known_values(self):
        assert levenshtein_within("kitten", "sitting", 3) == 3
        assert levenshtein_within("kitten", "sitting", 2) is None
        assert levenshtein_within("same", "same", 0) == 0
        assert levenshtein_within("ab", "ba", 2) == 2

    def test_negative_threshold(self):
        assert levenshtein_within("a", "a", -1) is None

    def test_length_gap_rejects_without_dp(self):
        assert levenshtein_within("ab", "abcdef", 2) is None

    def test_prefix_suffix_stripping(self):
        # Only the middle differs; the band never sees the shared affixes.
        assert levenshtein_within("prefix-A-suffix", "prefix-B-suffix", 1) == 1

    @given(st.text(max_size=12), st.text(max_size=12),
           st.integers(min_value=0, max_value=8))
    def test_equivalent_to_thresholded_reference(self, a, b, k):
        distance = levenshtein(a, b)
        expected = distance if distance <= k else None
        assert levenshtein_within(a, b, k) == expected

    @given(st.text(max_size=12), st.text(max_size=12),
           st.integers(min_value=0, max_value=8))
    def test_symmetry(self, a, b, k):
        assert levenshtein_within(a, b, k) == levenshtein_within(b, a, k)

    @given(st.text(alphabet="ab", max_size=16),
           st.text(alphabet="ab", max_size=16))
    def test_small_alphabet_stresses_the_band(self, a, b):
        # Dense near-matches exercise every band-edge branch.
        for k in range(4):
            distance = levenshtein(a, b)
            expected = distance if distance <= k else None
            assert levenshtein_within(a, b, k) == expected


class TestMongeElkan:
    def test_reordered_tokens_score_high(self):
        assert label_similarity("John Smith", "Smith, John") > 0.9

    def test_unrelated_labels_score_low(self):
        assert label_similarity("John Smith", "Quartz Banana") < 0.5

    def test_empty_tokens(self):
        assert monge_elkan([], ["a"]) == 0.0
        assert monge_elkan(["a"], []) == 0.0

    def test_subset_asymmetry_fixed_by_symmetric(self):
        forward = monge_elkan(["john"], ["john", "smith"])
        backward = monge_elkan(["john", "smith"], ["john"])
        assert forward != backward
        symmetric = monge_elkan_symmetric(["john"], ["john", "smith"])
        assert math.isclose(symmetric, (forward + backward) / 2)

    @given(
        st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=4),
        st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=4),
    )
    def test_symmetric_version_is_symmetric(self, a, b):
        assert math.isclose(
            monge_elkan_symmetric(a, b), monge_elkan_symmetric(b, a)
        )

    @given(st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=4))
    def test_self_similarity_is_one(self, tokens):
        assert math.isclose(monge_elkan_symmetric(tokens, tokens), 1.0)

    @given(
        st.lists(st.text(min_size=1, max_size=6), max_size=4),
        st.lists(st.text(min_size=1, max_size=6), max_size=4),
    )
    def test_memoized_version_is_bit_identical(self, a, b):
        memo = {}
        assert monge_elkan_symmetric_memo(a, b, memo) == monge_elkan_symmetric(a, b)
        # A warm memo must not change the value either.
        assert monge_elkan_symmetric_memo(a, b, memo) == monge_elkan_symmetric(a, b)


class TestTermVectors:
    def test_term_vector_unions_fragments(self):
        vector = term_vector(["green day", None, "21 guns"])
        assert vector == frozenset({"green", "day", "21", "guns"})

    def test_cosine_identical(self):
        vector = frozenset({"a", "b"})
        assert binary_cosine(vector, vector) == 1.0

    def test_cosine_disjoint(self):
        assert binary_cosine(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_cosine_empty(self):
        assert binary_cosine(frozenset(), frozenset({"a"})) == 0.0

    def test_jaccard_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0

    @given(
        st.frozensets(st.text(min_size=1, max_size=4), max_size=8),
        st.frozensets(st.text(min_size=1, max_size=4), max_size=8),
    )
    def test_cosine_bounds_and_symmetry(self, a, b):
        score = binary_cosine(a, b)
        assert 0.0 <= score <= 1.0
        assert math.isclose(score, binary_cosine(b, a))

    @given(
        st.frozensets(st.text(min_size=1, max_size=4), max_size=8),
        st.frozensets(st.text(min_size=1, max_size=4), max_size=8),
    )
    def test_jaccard_le_cosine(self, a, b):
        # For binary vectors, Jaccard is a lower bound of cosine.
        assert jaccard(a, b) <= binary_cosine(a, b) + 1e-12 or (not a and not b)
