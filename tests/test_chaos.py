"""The chaos matrix: SIGKILL a real process at every injection point.

For each point in :data:`repro.faults.POINTS`, this suite arms
``REPRO_FAULTS`` in a real subprocess (``repro ingest`` / ``repro run``
/ ``repro worker`` / ``repro serve``), lets the ``crash`` action
SIGKILL it at exactly that boundary, and then proves the recovery
contract end to end:

1. **fsck after the crash** — the surviving on-disk state verifies
   clean (at most warnings; ``--repair`` where the crash strands
   quarantinable leftovers);
2. **recovery is complete** — re-ingest / rerun / lease expiry /
   journal restart resumes the interrupted work;
3. **byte equality** — the recovered output is byte-identical to the
   committed golden fixtures (``tests/golden/expected_Song.json``) or,
   for the spool legs, to the uninterrupted task results.

A final completeness check asserts the matrix names every registered
injection point, so adding a ``faults.check`` call site without a chaos
leg fails this file.
"""

from __future__ import annotations

import json
import pickle
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from queue_worker_helpers import timed_holding, timed_square
from repro.api import RunSession
from repro.corpus.store import CorpusStore
from repro.faults import POINTS
from repro.fsck import run_fsck
from repro.parallel import WorkQueue, run_worker
from repro.serve import ServiceClient
from test_signals import ServeProcess, make_golden_store, subprocess_env

TESTS_DIR = Path(__file__).parent
GOLDEN_DIR = TESTS_DIR / "golden"

#: ``crash`` is SIGKILL (or ``os._exit(137)`` where signals are absent).
SIGKILLED = (-signal.SIGKILL, 137)

#: injection point -> the chaos leg that kills a process there.
MATRIX = {
    "corpus.shard_write": "TestIngestCrash",
    "artifacts.put": "TestRunCrash",
    "artifacts.meta_save": "TestRunCrash",
    "queue.claim": "TestWorkerCrash",
    "queue.complete": "TestWorkerCrash",
    "queue.lease_renew": "TestWorkerCrash",
    "serve.writer": "TestServeCrash",
    "serve.request": "TestServeCrash",
}


def test_matrix_covers_every_registered_point():
    assert set(MATRIX) == set(POINTS)


@pytest.fixture(scope="module")
def expected_song() -> str:
    return (GOLDEN_DIR / "expected_Song.json").read_text(encoding="utf-8")


def run_cli(args, *, faults: str | None = None, timeout: float = 300.0):
    extra = {"REPRO_FAULTS": faults} if faults else {}
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=subprocess_env(**extra),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def session_canonical(store_dir: Path) -> str:
    store = CorpusStore.open(store_dir)
    try:
        session = RunSession.from_corpus_store(store)
        return session.run_incremental(
            "Song", use_cache=False
        ).canonical_json()
    finally:
        store.close()


# -- corpus.shard_write: repro ingest killed mid-write ------------------
class TestIngestCrash:
    def test_crash_between_shards_then_reingest_matches_golden(
        self, tmp_path, expected_song
    ):
        store_dir = tmp_path / "store"
        corpus_jsonl = GOLDEN_DIR / "world" / "corpus.jsonl"
        ingest_args = [
            "ingest", str(corpus_jsonl),
            "--store", str(store_dir), "--shards", "2",
        ]
        killed = run_cli(
            ingest_args, faults="corpus.shard_write:crash@2"
        )
        assert killed.returncode in SIGKILLED, killed.stderr
        assert "crashing process" in killed.stderr
        # The crash fell before the second shard's transaction commit:
        # that sub-batch is lost, but nothing is torn.
        report = run_fsck(store_dir)
        assert report.clean, [f.detail for f in report.findings]
        # Ingest is idempotent — rerunning it restores the lost rows.
        recovered = run_cli(ingest_args)
        assert recovered.returncode == 0, recovered.stderr
        assert run_fsck(store_dir).clean
        (store_dir / "knowledge_base.json").write_bytes(
            (GOLDEN_DIR / "world" / "knowledge_base.json").read_bytes()
        )
        assert session_canonical(store_dir) == expected_song


# -- artifacts.*: repro run --incremental killed mid-publish ------------
class TestRunCrash:
    @pytest.mark.parametrize(
        "spec",
        ["artifacts.put:crash@3", "artifacts.meta_save:crash@1"],
    )
    def test_crash_mid_store_write_then_rerun_matches_golden(
        self, tmp_path, expected_song, spec
    ):
        store_dir = make_golden_store(tmp_path / "store")
        killed = run_cli(
            ["run", "Song", "--store", str(store_dir),
             "--incremental", "--quiet"],
            faults=spec,
        )
        assert killed.returncode in SIGKILLED, killed.stderr
        # The interrupted writer strands exactly one orphan temp file —
        # never a torn object (writes land via atomic rename).
        report = run_fsck(store_dir)
        assert report.clean, [f.detail for f in report.findings]
        orphans = [f for f in report.findings if f.kind == "orphan_tmp"]
        assert len(orphans) == 1
        repaired = run_fsck(store_dir, repair=True)
        assert repaired.clean
        assert all(f.repaired for f in repaired.findings)
        assert run_fsck(store_dir).findings == []
        # The rerun reuses every artifact the crashed run completed and
        # recomputes the rest — to the committed bytes.
        assert session_canonical(store_dir) == expected_song


# -- queue.*: repro worker killed around the claim/complete/renew edges -
class TestWorkerCrash:
    def _spool_with_task(self, directory, function, items):
        spool = directory / "queue"
        queue = WorkQueue(spool)
        queue.create_batch("batch-1")
        payload = queue.payload_dir / "chunk-0.pkl"
        payload.write_bytes(pickle.dumps((function, items)))
        task_id = queue.enqueue("batch-1", "chaos", 0, payload)
        return spool, queue, task_id

    def _spawn_victim(self, spool, faults):
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--queue", str(spool), "--lease", "1.0", "--poll", "0.05",
            ],
            env=subprocess_env(REPRO_FAULTS=faults),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _recover(self, queue, spool):
        """Wait out the dead worker's lease, then drain with a clean one."""
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            queue.touch_batch("batch-1")
            if queue.expire_leases() or queue.stats()["pending"]:
                break
            time.sleep(0.1)
        done = run_worker(
            spool, max_tasks=1, idle_timeout=10.0, poll_interval=0.01
        )
        assert done == 1

    @pytest.mark.parametrize(
        "spec", ["queue.claim:crash@1", "queue.complete:crash@1"]
    )
    def test_killed_worker_lease_expires_and_retry_is_identical(
        self, tmp_path, spec
    ):
        items = list(range(5))
        spool, queue, task_id = self._spool_with_task(
            tmp_path, timed_square, items
        )
        victim = self._spawn_victim(spool, spec)
        try:
            assert victim.wait(timeout=120.0) in SIGKILLED
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup
                victim.kill()
        # Between death and recovery the spool verifies clean: the task
        # sits 'running' under a lease nobody serves (at most a
        # stale-lease *warning* once it lapses).
        report = run_fsck(spool)
        assert report.clean, [f.detail for f in report.findings]
        stale_result = None
        if spec.startswith("queue.complete"):
            # The crash fell after the result write, before the done
            # update — the result pickle is already on disk.
            result_path = spool / "results" / f"{task_id}.pkl"
            assert result_path.exists()
            stale_result = result_path.read_bytes()
        self._recover(queue, spool)
        finished = queue.fetch_finished("batch-1")
        assert [task.status for task in finished] == ["done"]
        assert finished[0].attempts == 2
        with open(finished[0].result_path, "rb") as handle:
            __, results = pickle.load(handle)
        assert results == [value * value for value in items]
        if stale_result is not None:
            # The retry recomputed the result byte-identically.
            assert Path(
                finished[0].result_path
            ).read_bytes() == stale_result
        assert run_fsck(spool).clean
        queue.close()

    def test_killed_lease_keeper_releases_the_chunk(self, tmp_path):
        control = tmp_path / "control"
        control.mkdir()
        (control / "hold").touch()
        items = [(value, str(control)) for value in range(4)]
        spool, queue, __ = self._spool_with_task(
            tmp_path, timed_holding, items
        )
        victim = self._spawn_victim(spool, "queue.lease_renew:crash@1")
        try:
            # The worker claims, starts the chunk, and dies at its first
            # lease renewal (~lease/3 in) while the chunk still holds.
            assert victim.wait(timeout=120.0) in SIGKILLED
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup
                victim.kill()
        started = next(control.glob("started-*"), None)
        assert started is not None, "victim died before starting the chunk"
        assert int(started.read_text()) == victim.pid
        started.unlink()
        (control / "hold").unlink()
        assert run_fsck(spool).clean
        self._recover(queue, spool)
        finished = queue.fetch_finished("batch-1")
        assert [task.status for task in finished] == ["done"]
        with open(finished[0].result_path, "rb") as handle:
            __, results = pickle.load(handle)
        assert results == [value * value for value in range(4)]
        queue.close()


# -- serve.*: repro serve killed, restarted, resumed --------------------
class TestServeCrash:
    def test_writer_crash_restart_resumes_run_to_golden_bytes(
        self, tmp_path, expected_song
    ):
        store_dir = make_golden_store(tmp_path / "store")
        journal = (
            store_dir / "artifacts" / "service" / "pending_runs.json"
        )
        victim = ServeProcess(
            store_dir,
            env=subprocess_env(REPRO_FAULTS="serve.writer:crash@1"),
        )
        try:
            url = victim.await_url()
            # The writer dequeues the submitted run and dies; the HTTP
            # reply may or may not make it out first — the *journal* is
            # the durable record either way.
            try:
                ServiceClient(url, timeout=60).submit_run("Song")
            except Exception:
                pass
            assert victim.proc.wait(timeout=120.0) in SIGKILLED
        finally:
            victim.cleanup()
        owed = json.loads(journal.read_text())["runs"]
        assert len(owed) == 1
        run_id = owed[0]["run_id"]
        report = run_fsck(store_dir)
        assert report.clean, [f.detail for f in report.findings]
        # Restart without faults: the journal re-queues the owed run.
        restarted = ServeProcess(store_dir)
        try:
            url = restarted.await_url()
            assert any(
                "recovered 1 pending run" in line
                for line in restarted.stderr_lines
            )
            client = ServiceClient(url, timeout=120)
            document = client.wait_for_run(run_id, timeout=240.0)
            assert document["status"] == "done"
            assert document.get("recovered") is True
            assert client.run_canonical(run_id) == expected_song
            # The debt is paid: nothing left to resume.
            assert json.loads(journal.read_text())["runs"] == []
            assert restarted.terminate_and_wait() == 143
        finally:
            restarted.cleanup()
        assert run_fsck(store_dir).clean

    def test_request_crash_restart_serves_golden_bytes(
        self, tmp_path, expected_song
    ):
        store_dir = make_golden_store(tmp_path / "store")
        victim = ServeProcess(
            store_dir,
            env=subprocess_env(REPRO_FAULTS="serve.request:crash@1"),
        )
        try:
            url = victim.await_url()
            # The handler dies mid-request: the connection drops with no
            # reply and the whole process goes down.
            with pytest.raises((urllib.error.URLError, ConnectionError)):
                urllib.request.urlopen(f"{url}/health", timeout=30)
            assert victim.proc.wait(timeout=60.0) in SIGKILLED
        finally:
            victim.cleanup()
        assert run_fsck(store_dir).clean
        restarted = ServeProcess(store_dir)
        try:
            url = restarted.await_url()
            client = ServiceClient(url, timeout=120)
            run_id = client.submit_run("Song")["run_id"]
            client.wait_for_run(run_id, timeout=240.0)
            assert client.run_canonical(run_id) == expected_song
            assert restarted.terminate_and_wait() == 143
        finally:
            restarted.cleanup()
