"""The `repro serve` subsystem: service core, HTTP transport, client.

The load-bearing claims under test:

* **byte-equality** — `GET /runs/<id>/canonical` serves exactly the
  bytes a batch ``repro run --incremental`` over the same store state
  produces (the service adds no semantics of its own);
* **snapshot isolation** — concurrent readers never observe a
  partially-updated snapshot, before, during, or after ingests and
  incremental runs;
* **error contract** — malformed ingest payloads answer 400 naming the
  offending record, unknown ids answer 404, and writer-thread failures
  surface in ``GET /runs/<id>`` instead of hanging the service.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import RunSession
from repro.corpus.store import CorpusStore
from repro.io import save_knowledge_base
from repro.io.serialize import WORLD_KB_FILE
from repro.serve import (
    KBService,
    ServiceClient,
    ServiceClientError,
    ServiceError,
    make_server,
)
from repro.synthesis.api import build_world
from repro.synthesis.profiles import WorldScale
from repro.webtables.table import WebTable

CLASS_NAME = "Song"

#: Tables ingested at service start; the rest arrive as deltas.
N_BASE = 16


def table_record(table: WebTable) -> dict:
    """The jsonl-style wire form `POST /ingest` accepts."""
    return {
        "table_id": table.table_id,
        "header": list(table.header),
        "rows": [list(row) for row in table.rows],
        "url": table.url,
    }


def batch_canonical(store: CorpusStore) -> str:
    """The oracle: a fresh from-scratch run over the store's current state."""
    session = RunSession.from_corpus_store(store, artifacts=False)
    result = session.run(CLASS_NAME, use_cache=False, executor="serial")
    return result.canonical_json()


@pytest.fixture(scope="module")
def song_world():
    return build_world(seed=11, scale=WorldScale(0.08), classes=[CLASS_NAME])


@pytest.fixture(scope="module")
def world_tables(song_world):
    return list(song_world.corpus)


class Served:
    """One live service + HTTP server + client over a fresh store."""

    def __init__(self, directory, world, tables):
        self.store = CorpusStore.create(directory / "store", shards=2)
        save_knowledge_base(
            # The KB is looked up by convention inside the store directory.
            world.knowledge_base,
            self.store.directory / WORLD_KB_FILE,
        )
        if tables:
            self.store.ingest(tables)
        self.service = KBService.from_store(self.store).start()
        self.server = make_server(self.service, port=0)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        host, port = self.server.server_address[:2]
        self.base_url = f"http://{host}:{port}"
        self.client = ServiceClient(self.base_url, timeout=120)

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.service.close()
        self.store.close()


@pytest.fixture(scope="module")
def served(song_world, world_tables, tmp_path_factory):
    box = Served(
        tmp_path_factory.mktemp("serve"), song_world, world_tables[:N_BASE]
    )
    yield box
    box.close()


@pytest.fixture(scope="module")
def first_run(served):
    """The first published run — shared by the read-path tests."""
    run_id = served.client.submit_run(CLASS_NAME)["run_id"]
    return served.client.wait_for_run(run_id)


class TestLifecycleEquivalence:
    """ingest → run → delta ingest → run, byte-checked at each step."""

    def test_first_run_matches_batch(self, served, first_run):
        assert first_run["status"] == "done"
        assert first_run["incremental"] is True
        assert first_run["incremental_report"] is not None
        canonical = served.client.run_canonical(first_run["run_id"])
        assert canonical == batch_canonical(served.store)
        assert (
            hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            == first_run["canonical_sha256"]
        )
        assert first_run["snapshot_version"] >= 1

    def test_delta_ingest_then_run_matches_batch(
        self, served, first_run, world_tables
    ):
        delta = world_tables[N_BASE : N_BASE + 4]
        report = served.client.ingest([table_record(t) for t in delta])
        assert report["report"]["inserted"] == len(delta)
        assert sorted(report["report"]["inserted_ids"]) == sorted(
            t.table_id for t in delta
        )
        assert report["tables"] == N_BASE + len(delta)

        document = served.client.wait_for_run(
            served.client.submit_run(CLASS_NAME)["run_id"]
        )
        assert document["status"] == "done"
        reuse = document["incremental_report"]
        # The delta engine recomputed only the new tables' analyses.
        assert reuse["analyses_loaded"] > 0
        assert served.client.run_canonical(
            document["run_id"]
        ) == batch_canonical(served.store)
        assert document["snapshot_version"] > first_run["snapshot_version"]

    def test_superseded_run_canonical_conflicts(self, served, first_run):
        with pytest.raises(ServiceClientError) as excinfo:
            served.client.run_canonical(first_run["run_id"])
        assert excinfo.value.status == 409
        assert "superseded" in str(excinfo.value)


class TestReadEndpoints:
    def test_health(self, served, first_run):
        health = served.client.health()
        assert health["status"] == "ok"
        assert health["writer_alive"] is True
        assert health["store"]["tables"] >= N_BASE
        assert health["snapshot"]["classes"]

    def test_entities_listing_and_paging(self, served, first_run):
        full = served.client.entities(class_name=CLASS_NAME)
        assert full["count"] == full["total"] > 0
        page = served.client.entities(
            class_name=CLASS_NAME, offset=1, limit=3
        )
        assert page["count"] == min(3, full["total"] - 1)
        assert page["entities"] == full["entities"][1:4]
        new_only = served.client.entities(
            class_name=CLASS_NAME, status="new"
        )
        assert all(e["status"] == "new" for e in new_only["entities"])

    def test_entity_roundtrip_with_facts(self, served, first_run):
        listing = served.client.entities(class_name=CLASS_NAME, limit=1)
        entity = listing["entities"][0]
        fetched = served.client.entity(CLASS_NAME, entity["id"])
        assert fetched["entity"] == entity
        facts = served.client.facts(
            class_name=CLASS_NAME, entity_id=entity["id"]
        )
        assert facts["total"] == len(entity["facts"])
        for fact in facts["facts"]:
            assert fact["entity_id"] == entity["id"]
            assert fact["provenance"], "every served fact carries provenance"
            for source in fact["provenance"]:
                assert {"table_id", "row_index", "column"} <= source.keys()

    def test_facts_property_filter(self, served, first_run):
        facts = served.client.facts(class_name=CLASS_NAME)
        assert facts["total"] > 0
        one_property = facts["facts"][0]["property"]
        filtered = served.client.facts(
            class_name=CLASS_NAME, property_name=one_property
        )
        assert 0 < filtered["total"] <= facts["total"]
        assert all(
            f["property"] == one_property for f in filtered["facts"]
        )

    def test_metrics_shape(self, served, first_run):
        metrics = served.client.metrics()
        assert metrics["runs"]["done"] >= 1
        latency = metrics["requests"]["latency_ms"]
        assert latency["count"] > 0
        assert latency["min"] <= latency["p50"] <= latency["p99"]
        assert metrics["stage_seconds"], "pipeline stage timings exposed"
        assert "kernel_cache" in metrics["session"]


class TestErrorPaths:
    def test_malformed_ingest_names_the_record(self, served, world_tables):
        records = [table_record(world_tables[0])]
        records.append({"header": ["a"], "rows": [["1"]]})
        with pytest.raises(ServiceClientError) as excinfo:
            served.client.ingest(records)
        assert excinfo.value.status == 400
        assert "body.tables[1]" in str(excinfo.value)
        assert "table_id" in str(excinfo.value)

    def test_ingest_body_must_be_object_with_tables(self, served):
        request = urllib.request.Request(
            served.base_url + "/ingest",
            data=json.dumps([1, 2]).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_ingest_rejects_non_json_body(self, served):
        request = urllib.request.Request(
            served.base_url + "/ingest",
            data=b"header,rows\n",
            headers={"Content-Type": "text/csv"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_entity_404(self, served, first_run):
        with pytest.raises(ServiceClientError) as excinfo:
            served.client.entity(CLASS_NAME, "no-such-entity")
        assert excinfo.value.status == 404
        assert "no entity" in str(excinfo.value)

    def test_unknown_class_404(self, served, first_run):
        with pytest.raises(ServiceClientError) as excinfo:
            served.client.entities(class_name="Nope")
        assert excinfo.value.status == 404

    def test_unknown_run_404(self, served):
        with pytest.raises(ServiceClientError) as excinfo:
            served.client.run("run-9999")
        assert excinfo.value.status == 404

    def test_unknown_route_404(self, served):
        with pytest.raises(ServiceClientError) as excinfo:
            served.client._request("GET", "/no/such/route")
        assert excinfo.value.status == 404

    def test_bad_status_filter_400(self, served, first_run):
        with pytest.raises(ServiceClientError) as excinfo:
            served.client.entities(class_name=CLASS_NAME, status="bogus")
        assert excinfo.value.status == 400

    def test_bad_run_submission_400(self, served):
        with pytest.raises(ServiceClientError) as excinfo:
            served.client._request(
                "POST", "/runs", payload={"class_name": ""}
            )
        assert excinfo.value.status == 400


class TestWriterFailures:
    """A run that blows up inside the writer thread must not hang."""

    def test_failure_surfaces_in_run_document(self, song_world, monkeypatch):
        session = RunSession(world=song_world)
        with KBService(session) as service:
            monkeypatch.setattr(
                service.session,
                "run",
                lambda *a, **k: (_ for _ in ()).throw(
                    RuntimeError("kernel exploded")
                ),
            )
            run_id = service.submit_run(CLASS_NAME)["run_id"]
            document = _wait(service, run_id)
            assert document["status"] == "failed"
            assert "RuntimeError" in document["error"]
            assert "kernel exploded" in document["error"]
            # The writer thread survived the failure...
            monkeypatch.undo()
            run_id = service.submit_run(CLASS_NAME)["run_id"]
            assert _wait(service, run_id)["status"] == "done"

    def test_ingest_without_store_conflicts(self, song_world):
        with KBService(RunSession(world=song_world)) as service:
            with pytest.raises(ServiceError) as excinfo:
                service.ingest_tables([])
            assert excinfo.value.status == 409

    def test_submit_before_start_rejected(self, song_world):
        service = KBService(RunSession(world=song_world))
        with pytest.raises(ServiceError) as excinfo:
            service.submit_run(CLASS_NAME)
        assert excinfo.value.status == 503


def _wait(service: KBService, run_id: str, timeout: float = 120.0) -> dict:
    deadline = time.time() + timeout
    while time.time() < deadline:
        document = service.run_document(run_id)
        if document["status"] in ("done", "failed"):
            return document
        time.sleep(0.01)
    raise AssertionError(f"run {run_id} did not finish")


class TestSnapshotConsistency:
    """Readers racing the writer must always see internally consistent
    snapshots, and each reader's view must move monotonically forward."""

    def test_concurrent_readers_never_see_partial_snapshots(
        self, served, first_run, world_tables
    ):
        service = served.service
        stop = threading.Event()
        failures: list[str] = []
        observed: dict[int, tuple] = {}
        observed_lock = threading.Lock()

        def reader():
            last_version = -1
            while not stop.is_set():
                listing = service.list_entities(class_name=CLASS_NAME)
                version = listing["snapshot_version"]
                if version < last_version:
                    failures.append(
                        f"snapshot went backwards: {last_version}→{version}"
                    )
                    return
                last_version = version
                if listing["count"] != listing["total"]:
                    failures.append("unpaged listing count != total")
                    return
                key = (version, listing["total"])
                with observed_lock:
                    seen = observed.setdefault(version, key)
                if seen != key:
                    failures.append(
                        f"version {version} served two shapes: {seen} vs {key}"
                    )
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            # Churn the store and republish while the readers hammer away.
            for step, table in enumerate(world_tables[N_BASE + 4 :][:3]):
                served.client.ingest([table_record(table)])
                document = served.client.wait_for_run(
                    served.client.submit_run(CLASS_NAME)["run_id"]
                )
                assert document["status"] == "done"
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures
        # The final state is still byte-equal to a fresh batch rebuild.
        runs = [d for d in service.run_documents() if d["status"] == "done"]
        last = max(runs, key=lambda d: d["snapshot_version"])
        assert service.run_canonical(
            last["run_id"]
        ) == batch_canonical(served.store)


class TestRunTracing:
    """The observability surface: trace ids, live event streaming, and
    the supporting client/metrics/access-log machinery."""

    def test_trace_id_propagates_from_header_to_run(self, served):
        client = ServiceClient(served.base_url, trace_id="tr-e2e-test01")
        document = client.submit_run(CLASS_NAME)
        assert document["trace_id"] == "tr-e2e-test01"
        assert served.client.run(document["run_id"])["trace_id"] == (
            "tr-e2e-test01"
        )
        client.wait_for_run(document["run_id"])

    def test_trace_header_echoed_and_sanitized(self, served):
        request = urllib.request.Request(
            served.base_url + "/health",
            headers={"X-Repro-Trace": "tr-echo-42"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["X-Repro-Trace"] == "tr-echo-42"
        request = urllib.request.Request(
            served.base_url + "/health",
            headers={"X-Repro-Trace": "not valid !!"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            fresh = response.headers["X-Repro-Trace"]
        assert fresh != "not valid !!" and fresh.startswith("tr-")

    def test_stream_events_follows_a_live_run(self, served):
        run_id = served.client.submit_run(CLASS_NAME)["run_id"]
        events = []
        status_at_first_stage = None
        for record in served.client.stream_events(run_id):
            events.append(record)
            if (
                status_at_first_stage is None
                and record.get("kind") == "stage"
            ):
                # The whole point of streaming: stage events arrive
                # while the run document still says running, not after.
                status_at_first_stage = served.client.run(
                    run_id
                )["status"]
        assert status_at_first_stage in ("queued", "running")
        sequences = [record["seq"] for record in events]
        assert sequences == sorted(sequences)
        assert len(sequences) == len(set(sequences)), "no duplicates"
        names = {record.get("name") for record in events}
        assert f"service_run:{run_id}" in names
        assert "queue_wait" in names
        kinds = {record.get("kind") for record in events}
        assert {"service", "run", "pipeline", "stage"} <= kinds
        # The stream terminated because the run did.
        final = served.client.run(run_id)
        assert final["status"] == "done"

        # The persisted log replays the exact same records.
        from repro.obs import read_events

        record = served.service.run_events_record(run_id)
        assert list(read_events(record.events_path)) == events

    def test_stream_resumes_after_seq(self, served):
        document = served.client.wait_for_run(
            served.client.submit_run(CLASS_NAME)["run_id"]
        )
        run_id = document["run_id"]
        full = list(served.client.stream_events(run_id))
        cut = full[len(full) // 2]["seq"]
        tail = list(served.client.stream_events(run_id, after_seq=cut))
        assert tail == [r for r in full if r["seq"] > cut]

    def test_stream_unknown_run_404(self, served):
        with pytest.raises(ServiceClientError) as excinfo:
            list(served.client.stream_events("run-nope"))
        assert excinfo.value.status == 404

    def test_stream_heartbeats_keep_quiet_connections_alive(self, served):
        # A forged queued record that no writer will ever pick up: the
        # stream has nothing to send, so the transport emits heartbeats.
        record = served.service.runs.create(CLASS_NAME, True)
        served.service.runs.update(
            record,
            events_path=str(
                served.service._traces_dir / f"{record.run_id}.ndjson"
            ),
        )
        stream = served.client.stream_events(
            record.run_id, heartbeats=True
        )
        first = next(stream)
        stream.close()
        assert first["type"] == "heartbeat"
        assert first["ts"] > 0

    def test_wait_for_run_timeout_names_last_state(self, served):
        # Same forged never-running record: deterministic timeout.
        record = served.service.runs.create(CLASS_NAME, True)
        with pytest.raises(ServiceClientError) as excinfo:
            served.client.wait_for_run(record.run_id, timeout=0.2)
        message = str(excinfo.value)
        assert record.run_id in message
        assert "'queued'" in message

    def test_metrics_observability_fields(self, served):
        metrics = served.client.metrics()
        assert metrics["uptime_s"] > 0
        assert metrics["queue_depth"] == 0
        assert metrics["snapshot_version"] >= 1

    def test_access_log_line_per_request(
        self, song_world, world_tables, tmp_path, capfd
    ):
        box = Served(tmp_path, song_world, world_tables[:4])
        try:
            box.server.access_log = True
            client = ServiceClient(box.base_url, trace_id="tr-log-1")
            client.health()
        finally:
            box.close()
        lines = [
            json.loads(line)
            for line in capfd.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        entry = next(line for line in lines if line["path"] == "/health")
        assert entry["method"] == "GET"
        assert entry["status"] == 200
        assert entry["ms"] >= 0
        assert entry["trace"] == "tr-log-1"
