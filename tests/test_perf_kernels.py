"""The similarity-kernel optimization layer (repro.perf + fast kernels).

The contract of every optimization in this layer is *exactness*: the
fast path must reproduce its reference byte for byte.  The hypothesis
suites here hold that under adversarial inputs — random vocabularies
with mutation sequences for the deletion-neighborhood fuzzy index, and
random token lists for the memoized Monge-Elkan — plus unit coverage of
the perf plumbing (counters, KernelCache, the TimingObserver surface,
the generation-keyed block cache and the ``repro profile`` command).
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.clustering.blocking import build_blocks
from repro.clustering.metrics import BowMetric, LabelMetric
from repro.clustering.similarity import RowSimilarity
from repro.corpus.indexing import CorpusLabelIndex
from repro.index.inverted import InvertedIndex
from repro.index.label_index import LabelIndex
from repro.matching.records import RowRecord
from repro.ml.aggregation import StaticWeightedAggregator
from repro.perf import (
    KernelCache,
    bump,
    counter_delta,
    kernel_counters,
    reset_kernel_counters,
)
from repro.perf.bench import compare_with_baseline, run_kernel_benchmarks
from repro.text.tokenize import normalize_label, tokenize
from repro.text.vectors import term_vector
from repro.webtables.table import WebTable

# ---------------------------------------------------------------------------
# Deletion-neighborhood fuzzy expansion ≡ the prefix-bucket scan
# ---------------------------------------------------------------------------

_token = st.text(alphabet="abcde", min_size=1, max_size=8)


class TestSimilarTokensEquivalence:
    @given(
        st.lists(st.lists(_token, min_size=1, max_size=5), min_size=1, max_size=12),
        st.lists(_token, min_size=1, max_size=20),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=200)
    def test_equivalent_over_random_vocabularies(self, documents, queries, k):
        index = InvertedIndex()
        for doc_id, tokens in enumerate(documents):
            index.add(doc_id, tokens)
        for query in queries:
            assert index.similar_tokens(query, k) == (
                index.similar_tokens_reference(query, k)
            )

    @given(
        st.lists(st.lists(_token, min_size=1, max_size=4), min_size=2, max_size=10),
        st.lists(
            st.tuples(st.sampled_from(["remove", "replace", "readd"]),
                      st.integers(min_value=0, max_value=9),
                      st.lists(_token, min_size=1, max_size=4)),
            max_size=8,
        ),
        st.lists(_token, min_size=1, max_size=10),
    )
    @settings(max_examples=100)
    def test_equivalent_after_mutations(self, documents, mutations, queries):
        """The delete-neighborhood map is maintained through remove/replace."""
        index = InvertedIndex()
        live = {}
        for doc_id, tokens in enumerate(documents):
            index.add(doc_id, tokens)
            live[doc_id] = tokens
        for operation, position, tokens in mutations:
            if not live:
                break
            doc_id = sorted(live)[position % len(live)]
            if operation == "remove":
                index.remove(doc_id)
                del live[doc_id]
            elif operation == "replace":
                index.add_or_replace(doc_id, tokens)
                live[doc_id] = tokens
            else:
                index.add(doc_id, live[doc_id])  # idempotent re-add
        for query in queries:
            for k in (0, 1, 2):
                assert index.similar_tokens(query, k) == (
                    index.similar_tokens_reference(query, k)
                )

    def test_typo_found_through_deletion_neighborhood(self):
        index = InvertedIndex()
        index.add("d1", ["smith"])
        assert index.similar_tokens("smyth") == {"smith"}

    def test_prefix_bucket_semantics_preserved(self):
        # "bbcd" is one edit from "abcd" but shares no two-char prefix;
        # the legacy scan never saw it, so the fast path must not either.
        index = InvertedIndex()
        index.add("d1", ["bbcd"])
        assert index.similar_tokens("abcd") == set()
        assert index.similar_tokens_reference("abcd") == set()


# ---------------------------------------------------------------------------
# Kernel counters + KernelCache
# ---------------------------------------------------------------------------


class TestCounters:
    def test_bump_snapshot_delta_reset(self):
        reset_kernel_counters()
        baseline = kernel_counters()
        bump("test.counter")
        bump("test.counter", 4)
        delta = counter_delta(baseline)
        assert delta["test.counter"] == 5
        reset_kernel_counters()
        assert kernel_counters().get("test.counter") is None

    def test_delta_drops_zero_entries(self):
        bump("test.static", 3)
        baseline = kernel_counters()
        assert "test.static" not in counter_delta(baseline)


def _record(row_id, label):
    norm = normalize_label(label)
    return RowRecord(
        row_id=("t", row_id),
        table_id="t",
        label=label,
        norm_label=norm,
        tokens=term_vector([label]),
        values={},
        label_tokens=tuple(tokenize(norm)),
    )


def _similarity(kernels=None):
    memo = kernels.token_sim if kernels is not None else None
    return RowSimilarity(
        [LabelMetric(memo=memo), BowMetric()],
        StaticWeightedAggregator({"LABEL": 0.7, "BOW": 0.3}, threshold=0.6),
    )


class TestKernelCache:
    def test_register_and_clear_drops_pair_caches_and_memo(self):
        kernels = KernelCache()
        similarity = kernels.register(_similarity(kernels))
        similarity.score(_record(1, "green day"), _record(2, "green days"))
        assert kernels.cache_info()["token_pairs"] > 0
        assert kernels.cache_info()["pair_scores"] == 1
        kernels.clear()
        assert kernels.cache_info()["token_pairs"] == 0
        assert kernels.cache_info()["pair_scores"] == 0
        assert similarity.cache_info() == {"entries": 0, "hits": 0, "misses": 0}

    def test_shared_memo_changes_nothing_but_speed(self):
        kernels = KernelCache()
        shared = kernels.register(_similarity(kernels))
        private = _similarity()
        pairs = [
            (_record(1, "the long road"), _record(2, "the long roads")),
            (_record(3, "long road"), _record(4, "the long road")),
        ]
        for a, b in pairs:
            assert shared.score(a, b) == private.score(a, b)

    def test_row_similarity_cache_info_counts_hits_and_misses(self):
        similarity = _similarity()
        a, b = _record(1, "alpha beta"), _record(2, "alpha betas")
        similarity.score(a, b)
        similarity.score(b, a)  # canonical pair: served from cache
        info = similarity.cache_info()
        assert info == {"entries": 1, "hits": 1, "misses": 1}
        similarity.clear()
        assert similarity.cache_info() == {"entries": 0, "hits": 0, "misses": 0}

    def test_label_metric_pickles_without_its_memo(self):
        import pickle

        kernels = KernelCache()
        metric = LabelMetric(memo=kernels.token_sim)
        metric.compute(_record(1, "green day"), _record(2, "green days"))
        assert kernels.token_sim  # the memo filled
        clone = pickle.loads(pickle.dumps(metric))
        assert clone._memo == {}  # workers start cold, not with the session memo
        # and the clone still scores identically
        a, b = _record(1, "green day"), _record(2, "green days")
        assert clone.compute(a, b) == metric.compute(a, b)


class TestSessionWiring:
    # Serial executor throughout: process-pool workers keep their kernel
    # memos (and counters) to themselves, so the main-process numbers
    # these tests assert on are only guaranteed in-process.

    def test_session_clear_cache_clears_kernels(self, tiny_world):
        from repro.api import RunSession

        session = RunSession(tiny_world)
        session.run("Song", executor="serial")
        assert session.kernels.cache_info()["token_pairs"] > 0
        session.clear_cache()
        assert session.kernels.cache_info()["token_pairs"] == 0

    def test_runs_share_the_session_token_memo(self, tiny_world):
        from repro.api import RunSession

        session = RunSession(tiny_world)
        session.run("Song", executor="serial")
        first = session.kernels.cache_info()["token_pairs"]
        assert first > 0
        session.run("Settlement", executor="serial")
        assert session.kernels.cache_info()["token_pairs"] >= first


# ---------------------------------------------------------------------------
# Generation-keyed per-label block cache
# ---------------------------------------------------------------------------


def _label_table(table_id, labels):
    return WebTable(
        table_id=table_id,
        header=("name", "year"),
        rows=[(label, str(2000 + i)) for i, label in enumerate(labels)],
        url=f"http://example.test/{table_id}",
    )


class TestBlockCacheGeneration:
    def test_generation_bumps_on_mutation(self):
        index = LabelIndex()
        generation = index.generation
        index.add("John Smith", "u1")
        assert index.generation > generation
        generation = index.generation
        index.remove("John Smith", "u1")
        assert index.generation > generation

    def test_blank_label_add_keeps_generation(self):
        index = LabelIndex()
        generation = index.generation
        index.add("   ", "u1")
        assert index.generation == generation

    def test_corpus_label_index_exposes_generation(self):
        index = CorpusLabelIndex()
        generation = index.generation
        index.add_table(_label_table("t1", ["green day", "oasis"]))
        assert index.generation > generation

    def test_unchanged_index_serves_blocks_from_cache(self):
        index = CorpusLabelIndex()
        index.add_table(_label_table("t1", ["green day", "green days", "oasis"]))
        records = [_record(1, "green day"), _record(2, "oasis")]
        reset_kernel_counters()
        first = build_blocks(records, index=index)
        searched_first = kernel_counters().get("blocking.label_searches", 0)
        assert searched_first == 2
        second = build_blocks(records, index=index)
        after = kernel_counters()
        assert after.get("blocking.label_searches", 0) == searched_first
        assert after.get("blocking.label_cache_hits", 0) >= 2
        assert second == first

    def test_mutated_index_recomputes_blocks(self):
        index = CorpusLabelIndex()
        index.add_table(_label_table("t1", ["green day"]))
        records = [_record(1, "green day")]
        first = build_blocks(records, index=index)
        index.add_table(_label_table("t2", ["green days"]))
        second = build_blocks(records, index=index)
        assert "green days" in next(iter(second.values()))
        assert first != second

    def test_different_max_similar_does_not_share_cache(self):
        index = CorpusLabelIndex()
        index.add_table(
            _label_table("t1", ["green day", "green days", "green daze"])
        )
        records = [_record(1, "green day")]
        wide = build_blocks(records, max_similar=3, index=index)
        narrow = build_blocks(records, max_similar=1, index=index)
        assert len(next(iter(narrow.values()))) <= len(next(iter(wide.values())))


# ---------------------------------------------------------------------------
# TimingObserver kernel surface + bench plumbing
# ---------------------------------------------------------------------------


class TestPerfHarness:
    def test_timing_observer_accumulates_kernel_deltas(self, tiny_world):
        from repro.api import RunSession
        from repro.pipeline.stages import TimingObserver

        timer = TimingObserver()
        session = RunSession(tiny_world, observers=[timer])
        session.run("Song", executor="serial")
        assert timer.kernel_counts.get("monge_elkan.pair_memo_misses", 0) > 0
        report = timer.report()
        assert "kernel counters:" in report
        assert "monge_elkan.pair_memo_hits" in report

    def test_compare_with_baseline_flags_collapsed_speedups(self):
        current = {"benchmarks": {"pair_scoring": {"speedup": 1.0}}}
        baseline = {"benchmarks": {"pair_scoring": {"speedup": 4.0}}}
        assert compare_with_baseline(current, baseline)
        assert not compare_with_baseline(current, baseline, tolerance=8.0)
        assert not compare_with_baseline(current, None)

    def test_kernel_benchmarks_smoke(self):
        document = run_kernel_benchmarks(n_tables=40, vocabulary_size=300)
        assert set(document["benchmarks"]) == {
            "similar_tokens", "levenshtein_within", "pair_scoring",
        }
        for entry in document["benchmarks"].values():
            assert entry["speedup"] > 0

    def test_profile_cli_writes_trajectory(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "BENCH_pipeline.json"
        code = main([
            "profile", "Song", "--scale", "0.1", "--iterations", "1",
            "--executor", "serial", "--json", "--output", str(output),
        ])
        assert code == 0
        document = json.loads(output.read_text())
        assert document["schema"] == "repro.bench.pipeline/v1"
        assert "schema_match" in document["stage_seconds"]
        assert any(
            name.startswith("monge_elkan") for name in document["kernel_counters"]
        )
        printed = json.loads(capsys.readouterr().out.split("trajectory")[0])
        assert printed["classes"] == ["Song"]

    def test_profile_cli_rejects_unknown_class(self):
        from repro.cli import main

        assert main(["profile", "NotAClass"]) == 2
