"""Unit tests for new detection."""

from __future__ import annotations

import pytest

from repro.datatypes import DataType
from repro.fusion.entity import Entity
from repro.kb import KBClass, KBInstance, KBProperty, KBSchema, KnowledgeBase
from repro.matching.records import RowRecord
from repro.ml.aggregation import StaticWeightedAggregator
from repro.newdetect import (
    CandidateSelector,
    Classification,
    EntityInstanceSimilarity,
    NewDetector,
    evaluate_detection,
    make_entity_metrics,
)
from repro.newdetect.detector import DetectionResult
from repro.newdetect.metrics import LabelEIMetric, PopularityEIMetric
from repro.text.vectors import term_vector


def detection_kb() -> KnowledgeBase:
    schema = KBSchema()
    schema.add_class(KBClass("Thing"))
    schema.add_class(KBClass("Agent", parent="Thing"))
    schema.add_class(
        KBClass(
            "Player",
            parent="Agent",
            properties={
                "team": KBProperty("team", DataType.INSTANCE_REFERENCE),
            },
        )
    )
    schema.add_class(KBClass("Album", parent="Thing"))
    kb = KnowledgeBase(schema)
    kb.add_instance(
        KBInstance(
            "kb:smith", "Player", ("John Smith",),
            facts={"team": "Packers"}, abstract="John Smith plays football.",
            page_links=500,
        )
    )
    kb.add_instance(
        KBInstance(
            "kb:smith2", "Player", ("John Smith",),
            facts={"team": "Bears"}, page_links=20,
        )
    )
    kb.add_instance(KBInstance("kb:album", "Album", ("John Smith",)))
    return kb


def make_entity(entity_id: str, label: str, facts=None) -> Entity:
    record = RowRecord(
        ("t", 0), "t", label, label.lower(), term_vector([label]),
        values=dict(facts or {}),
    )
    return Entity(
        entity_id=entity_id,
        class_name="Player",
        labels=(label,),
        rows=[record],
        facts=dict(facts or {}),
    )


def make_similarity(kb) -> EntityInstanceSimilarity:
    metrics = make_entity_metrics(
        ("LABEL", "TYPE", "BOW", "ATTRIBUTE", "POPULARITY"), kb, "Player", {}
    )
    aggregator = StaticWeightedAggregator(
        {"LABEL": 0.5, "TYPE": 0.1, "BOW": 0.1, "ATTRIBUTE": 0.25, "POPULARITY": 0.05},
        threshold=0.6,
    )
    return EntityInstanceSimilarity(metrics, aggregator)


class TestCandidateSelector:
    def test_retrieves_class_compatible_only(self):
        kb = detection_kb()
        selector = CandidateSelector(kb)
        candidates = selector.candidates(make_entity("e1", "John Smith"))
        uris = {instance.uri for instance in candidates}
        assert "kb:smith" in uris
        assert "kb:album" not in uris  # wrong branch of the hierarchy

    def test_unknown_label_gives_nothing(self):
        kb = detection_kb()
        selector = CandidateSelector(kb)
        assert selector.candidates(make_entity("e1", "Zzz Vvv Qqq")) == []


class TestMetrics:
    def test_popularity_single_candidate(self):
        kb = detection_kb()
        instance = kb.get("kb:smith")
        score, __ = PopularityEIMetric().compute(
            make_entity("e", "John Smith"), instance, [instance]
        )
        assert score == 1.0

    def test_popularity_ranks(self):
        kb = detection_kb()
        popular = kb.get("kb:smith")
        obscure = kb.get("kb:smith2")
        candidates = [popular, obscure]
        metric = PopularityEIMetric()
        assert metric.compute(make_entity("e", "x"), popular, candidates)[0] == 1.0
        assert metric.compute(make_entity("e", "x"), obscure, candidates)[0] == 0.5

    def test_label_metric(self):
        kb = detection_kb()
        instance = kb.get("kb:smith")
        score, __ = LabelEIMetric().compute(
            make_entity("e", "John Smith"), instance, [instance]
        )
        assert score == 1.0


class TestNewDetector:
    def test_known_entity_matched(self):
        kb = detection_kb()
        detector = NewDetector(
            CandidateSelector(kb), make_similarity(kb), -0.2, -0.2
        )
        entity = make_entity("e1", "John Smith", {"team": "Packers"})
        result = detector.detect([entity])
        assert result.classifications["e1"] is Classification.EXISTING
        assert result.correspondences["e1"] == "kb:smith"

    def test_unknown_entity_new(self):
        kb = detection_kb()
        detector = NewDetector(
            CandidateSelector(kb), make_similarity(kb), -0.2, -0.2
        )
        entity = make_entity("e2", "Unheard Of Player")
        result = detector.detect([entity])
        assert result.classifications["e2"] is Classification.NEW
        assert result.best_scores["e2"] is None

    def test_attribute_disambiguates_homonyms(self):
        kb = detection_kb()
        detector = NewDetector(
            CandidateSelector(kb), make_similarity(kb), -0.2, -0.2
        )
        entity = make_entity("e3", "John Smith", {"team": "Bears"})
        result = detector.detect([entity])
        assert result.correspondences.get("e3") == "kb:smith2"

    def test_invalid_thresholds_rejected(self):
        kb = detection_kb()
        with pytest.raises(ValueError):
            NewDetector(CandidateSelector(kb), make_similarity(kb), 0.5, 0.0)


class TestEvaluateDetection:
    def test_perfect(self):
        result = DetectionResult(
            classifications={
                "e1": Classification.NEW, "e2": Classification.EXISTING,
            },
            correspondences={"e2": "kb:x"},
        )
        scores = evaluate_detection(
            result, {"e1": True, "e2": False}, {"e2": "kb:x"}
        )
        assert scores.accuracy == 1.0
        assert scores.f1_new == 1.0
        assert scores.f1_existing == 1.0

    def test_wrong_instance_counts_as_incorrect(self):
        result = DetectionResult(
            classifications={"e1": Classification.EXISTING},
            correspondences={"e1": "kb:wrong"},
        )
        scores = evaluate_detection(result, {"e1": False}, {"e1": "kb:right"})
        assert scores.accuracy == 0.0
        assert scores.f1_existing == 0.0

    def test_ambiguous_never_correct(self):
        result = DetectionResult(
            classifications={"e1": Classification.AMBIGUOUS}
        )
        scores = evaluate_detection(result, {"e1": True}, {})
        assert scores.accuracy == 0.0
