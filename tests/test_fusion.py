"""Unit tests for entity creation (value fusion)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.greedy import Cluster
from repro.datatypes import DataType, DateValue
from repro.fusion import (
    CandidateValue,
    EntityCreator,
    VotingScorer,
    fuse_values,
    make_scorer,
)
from repro.fusion.entity import collect_labels
from repro.kb import KBClass, KBInstance, KBProperty, KBSchema, KnowledgeBase
from repro.matching.correspondences import (
    AttributeCorrespondence,
    SchemaMapping,
    TableMapping,
)
from repro.matching.records import RowRecord
from repro.text.vectors import term_vector


def candidate(value, score=1.0, row=("t", 0)) -> CandidateValue:
    return CandidateValue(value, score, row, -1)


class TestFuseValues:
    def test_empty_returns_none(self):
        assert fuse_values([], DataType.TEXT) is None

    def test_majority_text(self):
        candidates = [
            candidate("Packers"), candidate("Packers"), candidate("Bears"),
        ]
        assert fuse_values(candidates, DataType.INSTANCE_REFERENCE) == "Packers"

    def test_scores_outweigh_counts(self):
        candidates = [
            candidate("Bears", 0.1), candidate("Bears", 0.1),
            candidate("Packers", 0.9),
        ]
        assert fuse_values(candidates, DataType.INSTANCE_REFERENCE) == "Packers"

    def test_weighted_median_quantity(self):
        candidates = [
            candidate(100.0, 1.0), candidate(110.0, 1.0), candidate(500.0, 0.5),
        ]
        fused = fuse_values(candidates, DataType.QUANTITY)
        assert fused in (100.0, 110.0)  # outlier never wins

    def test_quantity_grouping_respects_tolerance(self):
        # 100 and 103 group together (5% tolerance) and outvote 200.
        candidates = [candidate(100.0), candidate(103.0), candidate(200.0)]
        fused = fuse_values(candidates, DataType.QUANTITY, tolerance=0.05)
        assert fused in (100.0, 103.0)

    def test_date_prefers_day_granularity_within_year(self):
        candidates = [
            candidate(DateValue(1987)), candidate(DateValue(1987, 3, 14)),
            candidate(DateValue(1987)),
        ]
        fused = fuse_values(candidates, DataType.DATE)
        assert fused.year == 1987
        assert fused.is_day_granular

    def test_nominal_integer_group_select(self):
        candidates = [candidate(7), candidate(7), candidate(9)]
        assert fuse_values(candidates, DataType.NOMINAL_INTEGER) == 7

    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=10
        )
    )
    @settings(max_examples=30)
    def test_fused_quantity_is_a_candidate(self, values):
        candidates = [candidate(value) for value in values]
        fused = fuse_values(candidates, DataType.QUANTITY)
        assert fused in values


class TestCollectLabels:
    def test_frequency_order(self):
        rows = [
            RowRecord(("t", i), "t", label, label.lower(), frozenset())
            for i, label in enumerate(["A Song", "B Song", "A Song"])
        ]
        assert collect_labels(rows) == ("A Song", "B Song")


def fusion_kb() -> KnowledgeBase:
    schema = KBSchema()
    schema.add_class(KBClass("Thing"))
    schema.add_class(
        KBClass(
            "Player",
            parent="Thing",
            properties={
                "team": KBProperty("team", DataType.INSTANCE_REFERENCE),
                "height": KBProperty("height", DataType.QUANTITY, tolerance=0.03),
            },
        )
    )
    kb = KnowledgeBase(schema)
    kb.add_instance(
        KBInstance("kb:p", "Player", ("John Smith",), facts={"team": "Packers"})
    )
    return kb


class TestEntityCreator:
    def test_creates_entity_with_fused_facts(self):
        kb = fusion_kb()
        rows = [
            RowRecord(
                ("t1", 0), "t1", "John Smith", "john smith",
                term_vector(["John Smith"]),
                values={"team": "Packers", "height": 1.88},
            ),
            RowRecord(
                ("t2", 0), "t2", "John Smith", "john smith",
                term_vector(["John Smith"]),
                values={"team": "Packers", "height": 1.87},
            ),
        ]
        creator = EntityCreator(kb, "Player", VotingScorer())
        entities = creator.create([Cluster("c1", members=rows)])
        assert len(entities) == 1
        entity = entities[0]
        assert entity.facts["team"] == "Packers"
        assert entity.facts["height"] in (1.87, 1.88)
        assert entity.labels == ("John Smith",)

    def test_empty_cluster_skipped(self):
        kb = fusion_kb()
        creator = EntityCreator(kb, "Player", VotingScorer())
        assert creator.create([Cluster("c1")]) == []

    def test_unknown_property_ignored(self):
        kb = fusion_kb()
        rows = [
            RowRecord(
                ("t1", 0), "t1", "X", "x", frozenset(),
                values={"nonexistent": "value"},
            )
        ]
        creator = EntityCreator(kb, "Player", VotingScorer())
        entities = creator.create([Cluster("c1", members=rows)])
        assert entities[0].facts == {}


class TestScorers:
    def test_make_scorer_voting(self):
        scorer = make_scorer("voting")
        assert scorer.score("t", ("t", 0), "team", "x") == 1.0

    def test_make_scorer_matching_uses_correspondence_score(self):
        mapping = SchemaMapping()
        table_mapping = TableMapping("t1", class_name="Player", label_column=0)
        table_mapping.attributes[1] = AttributeCorrespondence(
            "t1", 1, "team", 0.73, DataType.INSTANCE_REFERENCE
        )
        mapping.add(table_mapping)
        scorer = make_scorer("matching", mapping=mapping)
        assert scorer.score("t1", ("t1", 0), "team", "x") == 0.73

    def test_make_scorer_unknown_raises(self):
        with pytest.raises(ValueError):
            make_scorer("bogus")

    def test_kbt_requires_inputs(self):
        with pytest.raises(ValueError):
            make_scorer("kbt")
