"""SIGTERM contracts of the long-lived commands, against real processes.

``repro serve``: stop accepting, drain every queued writer job, release
the port, exit 143.  ``repro worker``: finish the chunk in hand (its
lease keeper stays alive throughout), deregister from the spool, exit
143.  Both are proven here with actual subprocesses and actual signals —
a handler that only works in-process is not a shutdown contract.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.corpus.store import CorpusStore
from repro.io import load_world_directory, save_knowledge_base
from repro.io.serialize import WORLD_KB_FILE
from repro.parallel import WorkQueue

TESTS_DIR = Path(__file__).parent
SRC_DIR = TESTS_DIR.parent / "src"
GOLDEN_DIR = TESTS_DIR / "golden"


def subprocess_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR), str(TESTS_DIR), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env.update(extra)
    return env


def make_golden_store(directory: Path) -> Path:
    knowledge_base, corpus = load_world_directory(GOLDEN_DIR / "world")
    store = CorpusStore.create(directory, shards=2)
    store.ingest(iter(corpus))
    save_knowledge_base(knowledge_base, store.directory / WORLD_KB_FILE)
    store.close()
    return store.directory


class ServeProcess:
    """A real ``repro serve`` subprocess with its stderr tailed live."""

    def __init__(self, store: Path, *, env: dict | None = None, args=()):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(store), "--port", "0", "--quiet", *args,
            ],
            env=env or subprocess_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.stderr_lines: list[str] = []
        self._reader = threading.Thread(target=self._tail, daemon=True)
        self._reader.start()

    def _tail(self) -> None:
        for line in self.proc.stderr:
            self.stderr_lines.append(line)

    def await_url(self, timeout: float = 120.0) -> str:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in list(self.stderr_lines):
                if " on http://" in line:
                    return "http://" + line.split(" on http://", 1)[1].split()[0]
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"serve exited with {self.proc.returncode} before "
                    f"publishing its URL; stderr: {''.join(self.stderr_lines)}"
                )
            time.sleep(0.05)
        raise AssertionError("serve never published its URL")

    def terminate_and_wait(self, timeout: float = 240.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=timeout)
        self._reader.join(timeout=10.0)
        return code

    def cleanup(self) -> None:
        if self.proc.poll() is None:  # pragma: no cover - test failed
            self.proc.kill()
            self.proc.wait(timeout=30.0)


@pytest.fixture(scope="module")
def golden_store_dir(tmp_path_factory) -> Path:
    return make_golden_store(tmp_path_factory.mktemp("signals") / "store")


class TestServeSigterm:
    def test_sigterm_exits_143_cleanly(self, golden_store_dir):
        serve = ServeProcess(golden_store_dir)
        try:
            url = serve.await_url()
            with urllib.request.urlopen(f"{url}/health", timeout=30) as reply:
                assert json.load(reply)["status"] == "ok"
            code = serve.terminate_and_wait()
        finally:
            serve.cleanup()
        assert code == 143
        stderr = "".join(serve.stderr_lines)
        assert "terminated" in stderr

    def test_sigterm_drains_a_queued_run_before_exiting(
        self, golden_store_dir
    ):
        """A run accepted before the signal finishes; the pending-run
        journal is empty on exit — nothing was owed, nothing was lost."""
        serve = ServeProcess(golden_store_dir)
        try:
            url = serve.await_url()
            request = urllib.request.Request(
                f"{url}/runs",
                data=json.dumps({"class_name": "Song"}).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as reply:
                run_id = json.load(reply)["run_id"]
            assert run_id
            # The journal owes the run until its terminal status.
            journal = (
                golden_store_dir / "artifacts" / "service"
                / "pending_runs.json"
            )
            assert json.loads(journal.read_text())["runs"]
            code = serve.terminate_and_wait()
        finally:
            serve.cleanup()
        assert code == 143
        # close() drained the writer: the run reached its terminal
        # status and was journal-removed before the process exited.
        assert json.loads(journal.read_text())["runs"] == []


class TestWorkerSigterm:
    def test_sigterm_finishes_the_held_chunk_then_exits_143(self, tmp_path):
        spool = tmp_path / "queue"
        control = tmp_path / "control"
        control.mkdir()
        (control / "hold").touch()
        queue = WorkQueue(spool)
        queue.create_batch("batch-1")
        from queue_worker_helpers import timed_holding

        items = [(value, str(control)) for value in range(3)]
        payload = queue.payload_dir / "chunk-0.pkl"
        payload.write_bytes(pickle.dumps((timed_holding, items)))
        task_id = queue.enqueue("batch-1", "held", 0, payload)
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--queue", str(spool), "--lease", "2.0", "--poll", "0.05",
            ],
            env=subprocess_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if next(control.glob("started-*"), None) is not None:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("worker never started the chunk")
            # SIGTERM lands mid-chunk: the worker must keep going (and
            # keep renewing its lease) until the chunk completes.
            worker.send_signal(signal.SIGTERM)
            time.sleep(0.5)
            assert worker.poll() is None, "worker abandoned its chunk"
            (control / "hold").unlink()
            code = worker.wait(timeout=60.0)
            stderr = worker.stderr.read()
        finally:
            if worker.poll() is None:  # pragma: no cover - test failed
                worker.kill()
                worker.wait(timeout=30.0)
        assert code == 143
        assert "terminated" in stderr
        assert "after 1 task(s)" in stderr
        finished = queue.fetch_finished("batch-1")
        assert [task.status for task in finished] == ["done"]
        with open(finished[0].result_path, "rb") as handle:
            __, results = pickle.load(handle)
        assert results == [value * value for value in range(3)]
        assert finished[0].task_id == task_id
        # Graceful exit deregistered the worker from the spool.
        assert queue.live_workers() == 0
        queue.close()

    def test_idle_worker_sigterm_exits_143_promptly(self, tmp_path):
        WorkQueue(tmp_path / "queue").close()
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--queue", str(tmp_path / "queue"), "--poll", "0.05",
            ],
            env=subprocess_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            time.sleep(1.0)  # let it enter the poll loop
            worker.send_signal(signal.SIGTERM)
            code = worker.wait(timeout=30.0)
            stderr = worker.stderr.read()
        finally:
            if worker.poll() is None:  # pragma: no cover - test failed
                worker.kill()
                worker.wait(timeout=30.0)
        assert code == 143
        assert "after 0 task(s)" in stderr
