"""Failure injection: the pipeline must degrade gracefully, never crash.

Web table extraction produces pathological inputs — empty columns,
single-cell tables, unicode soup, numeric labels, duplicated rows.  These
tests feed such tables through schema matching and the full default
pipeline and assert structured, non-crashing behaviour.
"""

from __future__ import annotations

import pytest

from repro.clustering.clusterer import RowClusterer
from repro.clustering.similarity import RowSimilarity
from repro.datatypes import DataType, detect_column_type, normalize_value
from repro.datatypes.normalization import NormalizationError
from repro.matching import SchemaMatcher, build_row_records
from repro.matching.records import RowRecord
from repro.ml.aggregation import StaticWeightedAggregator
from repro.parallel import ExecutorError, ProcessExecutor, ThreadExecutor
from repro.pipeline.pipeline import LongTailPipeline, PipelineConfig
from repro.webtables import TableCorpus, WebTable


def pathological_tables() -> list[WebTable]:
    return [
        # All cells empty except the header.
        WebTable("empty", ("a", "b"), [(None, None), (None, None)]),
        # Single row, single meaningful value.
        WebTable("single", ("name", "x"), [("Only Row", None)]),
        # Unicode soup labels.
        WebTable(
            "unicode", ("name", "value"),
            [("Ünïcødé Çhãos ™", "12"), ("中文标签", "13"), ("🎵🎵🎵", "14")],
        ),
        # Numeric-only "labels".
        WebTable(
            "numeric", ("id", "count"),
            [("123", "5"), ("456", "6"), ("789", "7")],
        ),
        # Identical rows repeated.
        WebTable(
            "repeats", ("name", "v"),
            [("Copy Cat", "1")] * 6,
        ),
        # Very wide cells.
        WebTable(
            "wide", ("name", "text"),
            [("Row " + "x" * 500, "y" * 1000), ("Other", "z")],
        ),
    ]


class TestSchemaMatchingRobustness:
    def test_analyze_never_crashes(self, tiny_world):
        corpus = TableCorpus(pathological_tables())
        matcher = SchemaMatcher(tiny_world.knowledge_base)
        for table_id in corpus.table_ids():
            column_types, label_column = matcher.analyze_table(corpus, table_id)
            assert isinstance(column_types, dict)

    def test_match_corpus_never_crashes(self, tiny_world):
        corpus = TableCorpus(pathological_tables())
        matcher = SchemaMatcher(tiny_world.knowledge_base)
        mapping = matcher.match_corpus(corpus)
        assert set(mapping.by_table) == set(corpus.table_ids())

    def test_records_from_pathological_corpus(self, tiny_world):
        corpus = TableCorpus(pathological_tables())
        matcher = SchemaMatcher(tiny_world.knowledge_base)
        mapping = matcher.match_corpus(corpus)
        for class_name in ("Song", "Settlement"):
            records = build_row_records(corpus, mapping, class_name)
            for record in records:
                assert record.norm_label


class TestPipelineRobustness:
    def test_pipeline_on_garbage_corpus(self, tiny_world):
        corpus = TableCorpus(pathological_tables())
        pipeline = LongTailPipeline.default(tiny_world.knowledge_base)
        result = pipeline.run(corpus, "Song")
        # Nothing sensible to extract, but a structured result comes back.
        assert result.class_name == "Song"
        assert len(result.iterations) == 2

    def test_pipeline_on_empty_corpus(self, tiny_world):
        pipeline = LongTailPipeline.default(tiny_world.knowledge_base)
        result = pipeline.run(TableCorpus(), "Song")
        assert result.final.entities == []

    def test_pipeline_mixed_garbage_and_real(self, tiny_world):
        tables = pathological_tables()
        real_ids = tiny_world.tables_of_class("Song")[:5]
        for table_id in real_ids:
            tables.append(tiny_world.corpus.get(table_id))
        pipeline = LongTailPipeline.default(tiny_world.knowledge_base)
        result = pipeline.run(TableCorpus(tables), "Song")
        # The real tables should still produce records.
        assert len(result.final.records) > 0


class BoobyTrappedTable(WebTable):
    """A table whose column access explodes — simulates a worker crash.

    Module-level so instances pickle into process-pool workers.
    """

    def column(self, index):
        raise RuntimeError("corrupted payload")


class ExplodingRowMetric:
    """Row metric that fails on a poisoned label (picklable)."""

    name = "BOOM"

    def compute(self, a, b):
        if "poison" in (a.norm_label, b.norm_label):
            raise RuntimeError("metric blew up")
        return 1.0, 1.0


def _plain_record(number: int, label: str) -> RowRecord:
    return RowRecord(
        row_id=(f"t{number}", 0),
        table_id=f"t{number}",
        label=label,
        norm_label=label,
        tokens=frozenset(label.split()),
        values={},
        label_tokens=tuple(label.split()),
    )


class TestParallelFailurePropagation:
    """Worker exceptions must surface with the originating chunk/table id."""

    @pytest.fixture(
        scope="class", params=["thread", "process"], ids=["thread", "process"]
    )
    def pool(self, request):
        executor = (
            ThreadExecutor(2) if request.param == "thread" else ProcessExecutor(2)
        )
        yield executor
        executor.close()

    def test_schema_matching_worker_crash_names_table(self, tiny_world, pool):
        tables = pathological_tables()
        tables.insert(3, BoobyTrappedTable("trapped", ("a", "b"), [("x", "y")]))
        corpus = TableCorpus(tables)
        matcher = SchemaMatcher(tiny_world.knowledge_base, executor=pool)
        with pytest.raises(ExecutorError) as caught:
            matcher.match_corpus(corpus)
        error = caught.value
        assert error.task_name == "schema_match/analyze"
        assert "trapped" in error.item_labels
        assert "corrupted payload" in str(error)

    def test_clustering_worker_crash_names_block(self, pool):
        records = [
            _plain_record(0, "poison"),
            _plain_record(1, "poison"),
            _plain_record(2, "fine"),
        ]
        similarity = RowSimilarity(
            [ExplodingRowMetric()], StaticWeightedAggregator({"BOOM": 1.0}, 0.5)
        )
        clusterer = RowClusterer(similarity, executor=pool)
        with pytest.raises(ExecutorError) as caught:
            clusterer.cluster(records)
        error = caught.value
        assert error.task_name == "cluster/block_similarity"
        assert any(label.startswith("block:") for label in error.item_labels)
        assert "metric blew up" in str(error)

    def test_pipeline_on_garbage_corpus_parallel_matches_serial(
        self, tiny_world, pool
    ):
        """Graceful degradation holds under pools, with identical output."""
        corpus = TableCorpus(pathological_tables())
        serial = LongTailPipeline.default(
            tiny_world.knowledge_base,
            PipelineConfig(executor="serial"),
        ).run(corpus, "Song")
        parallel = LongTailPipeline.default(
            tiny_world.knowledge_base,
            PipelineConfig(executor=pool.name, workers=2),
        ).run(corpus, "Song")
        assert serial.canonical_json() == parallel.canonical_json()


class TestNormalizationRobustness:
    @pytest.mark.parametrize(
        "raw",
        ["", "   ", "​", "NaN", "inf", "-", "--", "n/a", "?"],
    )
    def test_weird_cells_raise_cleanly_or_parse(self, raw):
        for data_type in (DataType.DATE, DataType.QUANTITY, DataType.NOMINAL_INTEGER):
            try:
                normalize_value(raw, data_type)
            except NormalizationError:
                pass  # clean rejection is the contract

    def test_detection_on_mixed_garbage(self):
        cells = ["?", "--", "n/a", None, "", "12", "maybe"]
        assert detect_column_type(cells) in (
            DataType.TEXT, DataType.QUANTITY,
        )

    def test_huge_number(self):
        assert normalize_value("999,999,999,999", DataType.QUANTITY) == 999_999_999_999.0

    def test_negative_quantity(self):
        assert normalize_value("-42.5", DataType.QUANTITY) == -42.5
