"""Failure injection: the pipeline must degrade gracefully, never crash.

Web table extraction produces pathological inputs — empty columns,
single-cell tables, unicode soup, numeric labels, duplicated rows.  These
tests feed such tables through schema matching and the full default
pipeline and assert structured, non-crashing behaviour.
"""

from __future__ import annotations

import pytest

from repro.datatypes import DataType, detect_column_type, normalize_value
from repro.datatypes.normalization import NormalizationError
from repro.matching import SchemaMatcher, build_row_records
from repro.pipeline.pipeline import LongTailPipeline
from repro.webtables import TableCorpus, WebTable


def pathological_tables() -> list[WebTable]:
    return [
        # All cells empty except the header.
        WebTable("empty", ("a", "b"), [(None, None), (None, None)]),
        # Single row, single meaningful value.
        WebTable("single", ("name", "x"), [("Only Row", None)]),
        # Unicode soup labels.
        WebTable(
            "unicode", ("name", "value"),
            [("Ünïcødé Çhãos ™", "12"), ("中文标签", "13"), ("🎵🎵🎵", "14")],
        ),
        # Numeric-only "labels".
        WebTable(
            "numeric", ("id", "count"),
            [("123", "5"), ("456", "6"), ("789", "7")],
        ),
        # Identical rows repeated.
        WebTable(
            "repeats", ("name", "v"),
            [("Copy Cat", "1")] * 6,
        ),
        # Very wide cells.
        WebTable(
            "wide", ("name", "text"),
            [("Row " + "x" * 500, "y" * 1000), ("Other", "z")],
        ),
    ]


class TestSchemaMatchingRobustness:
    def test_analyze_never_crashes(self, tiny_world):
        corpus = TableCorpus(pathological_tables())
        matcher = SchemaMatcher(tiny_world.knowledge_base)
        for table_id in corpus.table_ids():
            column_types, label_column = matcher.analyze_table(corpus, table_id)
            assert isinstance(column_types, dict)

    def test_match_corpus_never_crashes(self, tiny_world):
        corpus = TableCorpus(pathological_tables())
        matcher = SchemaMatcher(tiny_world.knowledge_base)
        mapping = matcher.match_corpus(corpus)
        assert set(mapping.by_table) == set(corpus.table_ids())

    def test_records_from_pathological_corpus(self, tiny_world):
        corpus = TableCorpus(pathological_tables())
        matcher = SchemaMatcher(tiny_world.knowledge_base)
        mapping = matcher.match_corpus(corpus)
        for class_name in ("Song", "Settlement"):
            records = build_row_records(corpus, mapping, class_name)
            for record in records:
                assert record.norm_label


class TestPipelineRobustness:
    def test_pipeline_on_garbage_corpus(self, tiny_world):
        corpus = TableCorpus(pathological_tables())
        pipeline = LongTailPipeline.default(tiny_world.knowledge_base)
        result = pipeline.run(corpus, "Song")
        # Nothing sensible to extract, but a structured result comes back.
        assert result.class_name == "Song"
        assert len(result.iterations) == 2

    def test_pipeline_on_empty_corpus(self, tiny_world):
        pipeline = LongTailPipeline.default(tiny_world.knowledge_base)
        result = pipeline.run(TableCorpus(), "Song")
        assert result.final.entities == []

    def test_pipeline_mixed_garbage_and_real(self, tiny_world):
        tables = pathological_tables()
        real_ids = tiny_world.tables_of_class("Song")[:5]
        for table_id in real_ids:
            tables.append(tiny_world.corpus.get(table_id))
        pipeline = LongTailPipeline.default(tiny_world.knowledge_base)
        result = pipeline.run(TableCorpus(tables), "Song")
        # The real tables should still produce records.
        assert len(result.final.records) > 0


class TestNormalizationRobustness:
    @pytest.mark.parametrize(
        "raw",
        ["", "   ", "​", "NaN", "inf", "-", "--", "n/a", "?"],
    )
    def test_weird_cells_raise_cleanly_or_parse(self, raw):
        for data_type in (DataType.DATE, DataType.QUANTITY, DataType.NOMINAL_INTEGER):
            try:
                normalize_value(raw, data_type)
            except NormalizationError:
                pass  # clean rejection is the contract

    def test_detection_on_mixed_garbage(self):
        cells = ["?", "--", "n/a", None, "", "12", "maybe"]
        assert detect_column_type(cells) in (
            DataType.TEXT, DataType.QUANTITY,
        )

    def test_huge_number(self):
        assert normalize_value("999,999,999,999", DataType.QUANTITY) == 999_999_999_999.0

    def test_negative_quantity(self):
        assert normalize_value("-42.5", DataType.QUANTITY) == -42.5
