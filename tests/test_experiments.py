"""Smoke tests for the experiment harnesses (cheap ones only).

The fold-based and full-corpus experiments are exercised by the benchmark
suite; here we verify the fast profiling harnesses end to end and the
shared environment's caching / fold mechanics.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentEnv, get_env
from repro.experiments import table01, table02, table03, table05
from repro.experiments.env import subset_gold
from repro.experiments.report import ExperimentTable, format_table


@pytest.fixture(scope="module")
def env():
    return get_env(seed=7, scale_factor=0.25)


class TestReport:
    def test_format_alignment(self):
        text = format_table("T", ("A", "Blong"), [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Blong" in lines[2]

    def test_experiment_table_format(self):
        table = ExperimentTable("Table X", "demo", ("a",), rows=[(1,)])
        assert "Table X: demo" in table.format()


class TestEnvironment:
    def test_world_cached(self, env):
        assert env.world is env.world

    def test_gold_cached(self, env):
        assert env.gold("Song") is env.gold("Song")

    def test_get_env_singleton(self):
        assert get_env(seed=7, scale_factor=0.25) is get_env(7, 0.25)

    def test_folds_partition_clusters(self, env):
        gold = env.gold("Song")
        folds = env.folds("Song")
        assert len(folds) == 3
        all_ids = sorted(
            cluster.cluster_id for fold in folds for cluster in fold
        )
        assert all_ids == sorted(cluster.cluster_id for cluster in gold.clusters)

    def test_folds_keep_homonym_groups_together(self, env):
        folds = env.folds("Song")
        group_to_folds = {}
        for index, fold in enumerate(folds):
            for cluster in fold:
                group_to_folds.setdefault(cluster.homonym_group, set()).add(index)
        assert all(len(indices) == 1 for indices in group_to_folds.values())

    def test_fold_golds_disjoint(self, env):
        train_gold, test_gold = env.fold_golds("Song", 0)
        train_ids = {cluster.cluster_id for cluster in train_gold.clusters}
        test_ids = {cluster.cluster_id for cluster in test_gold.clusters}
        assert not (train_ids & test_ids)

    def test_subset_gold_restricts_facts(self, env):
        gold = env.gold("Song")
        subset = subset_gold(gold, gold.clusters[:5])
        cluster_ids = {cluster.cluster_id for cluster in subset.clusters}
        assert all(fact.cluster_id in cluster_ids for fact in subset.facts)


class TestProfilingHarnesses:
    def test_table01_rows(self, env):
        result = table01.run(env)
        assert len(result.rows) == 3
        # Song KB smaller than Settlement KB, as in the paper's ordering.
        by_class = {row[0]: row[1] for row in result.rows}
        assert by_class["Settlement"] > by_class["Song"]

    def test_table02_densities_filtered(self, env):
        result = table02.run(env)
        for row in result.rows:
            density = float(row[3].rstrip("%")) / 100
            assert density >= 0.30

    def test_table03_shape(self, env):
        result = table03.run(env)
        assert {row[0] for row in result.rows} == {"Rows", "Columns"}

    def test_table05_counts_consistent(self, env):
        result = table05.run(env)
        for row in result.rows:
            __, tables, attributes, rows, existing, new, *_ = row
            assert tables > 0
            assert existing + new > 0
