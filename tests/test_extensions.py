"""Tests for the extension features: dedup, slot filling, set expansion."""

from __future__ import annotations

import pytest

from repro.baselines import SeedBasedExpander
from repro.datatypes import DataType
from repro.fusion.entity import Entity
from repro.kb import KBClass, KBInstance, KBProperty, KBSchema, KnowledgeBase
from repro.matching.records import RowRecord
from repro.newdetect.detector import Classification, DetectionResult
from repro.pipeline.dedup import deduplicate_entities
from repro.pipeline.slotfill import slot_filling_report
from repro.text.vectors import term_vector
from repro.webtables import TableCorpus, WebTable


def dedup_kb() -> KnowledgeBase:
    schema = KBSchema()
    schema.add_class(KBClass("Thing"))
    schema.add_class(
        KBClass(
            "Song",
            parent="Thing",
            properties={
                "musicalArtist": KBProperty(
                    "musicalArtist", DataType.INSTANCE_REFERENCE
                ),
                "runtime": KBProperty("runtime", DataType.QUANTITY, tolerance=0.03),
            },
        )
    )
    return KnowledgeBase(schema)


def entity(entity_id, label, facts, n_rows=1, table="t"):
    rows = [
        RowRecord((f"{table}{entity_id}", i), f"{table}{entity_id}", label,
                  label.lower(), term_vector([label]))
        for i in range(n_rows)
    ]
    return Entity(entity_id, "Song", (label,), rows=rows, facts=dict(facts))


class TestDedup:
    def test_same_label_compatible_facts_merge(self):
        kb = dedup_kb()
        entities = [
            entity("e1", "Silent Heart", {"musicalArtist": "X", "runtime": 200.0}, 3),
            entity("e2", "Silent Heart", {"runtime": 201.0}, 1),
        ]
        result = deduplicate_entities(entities, kb, "Song")
        assert len(result.entities) == 1
        assert result.merged_away == 1
        assert len(result.entities[0].rows) == 4

    def test_conflicting_facts_do_not_merge(self):
        kb = dedup_kb()
        entities = [
            entity("e1", "Silent Heart", {"musicalArtist": "X"}, 2),
            entity("e2", "Silent Heart", {"musicalArtist": "Y"}, 1),
        ]
        result = deduplicate_entities(entities, kb, "Song")
        assert len(result.entities) == 2
        assert result.merged_away == 0

    def test_different_labels_do_not_merge(self):
        kb = dedup_kb()
        entities = [
            entity("e1", "Silent Heart", {}), entity("e2", "Golden Echo", {}),
        ]
        result = deduplicate_entities(entities, kb, "Song")
        assert len(result.entities) == 2

    def test_larger_entity_keeps_its_facts(self):
        kb = dedup_kb()
        entities = [
            entity("small", "Silent Heart", {"runtime": 300.0}, 1),
            entity("big", "Silent Heart", {"runtime": 302.0}, 5),
        ]
        result = deduplicate_entities(entities, kb, "Song")
        assert len(result.entities) == 1
        assert result.entities[0].facts["runtime"] == 302.0

    def test_input_entities_not_mutated(self):
        kb = dedup_kb()
        first = entity("e1", "Silent Heart", {"runtime": 200.0}, 2)
        second = entity("e2", "Silent Heart", {"runtime": 200.0}, 1)
        deduplicate_entities([first, second], kb, "Song")
        assert len(first.rows) == 2
        assert len(second.rows) == 1


class TestSlotFilling:
    def test_counts_new_confirming_conflicting(self):
        kb = dedup_kb()
        kb.add_instance(
            KBInstance(
                "kb:s1", "Song", ("Silent Heart",),
                facts={"runtime": 200.0},
            )
        )
        matched = entity(
            "e1", "Silent Heart",
            {"runtime": 201.0, "musicalArtist": "The Citys"},
        )
        detection = DetectionResult(
            classifications={"e1": Classification.EXISTING},
            correspondences={"e1": "kb:s1"},
        )
        report = slot_filling_report([matched], detection, kb, "Song")
        assert report.total_facts == 2
        assert report.confirming == 1  # runtime within tolerance
        assert report.new_facts == 1  # artist slot was empty
        assert report.filled_slots == [("kb:s1", "musicalArtist", "The Citys")]
        assert report.consistency == 1.0

    def test_unmatched_entities_ignored(self):
        kb = dedup_kb()
        unmatched = entity("e1", "Silent Heart", {"runtime": 200.0})
        report = slot_filling_report([unmatched], DetectionResult(), kb, "Song")
        assert report.total_facts == 0


class TestSetExpansion:
    def make_corpus(self):
        tables = [
            WebTable("t1", ("song",), [("Alpha",), ("Beta",), ("Gamma",)]),
            WebTable("t2", ("song",), [("Alpha",), ("Beta",), ("Delta",)]),
            WebTable("t3", ("song",), [("Unrelated",), ("Noise",)]),
        ]
        corpus = TableCorpus(tables)
        label_columns = {"t1": 0, "t2": 0, "t3": 0}
        return SeedBasedExpander(corpus, label_columns)

    def test_co_occurring_labels_rank_first(self):
        expander = self.make_corpus()
        result = expander.expand(["Alpha"], cutoff=10)
        assert result.ranked_labels[0] == "beta"  # in both seed tables
        assert "unrelated" not in result.ranked_labels

    def test_multi_seed_weighting(self):
        expander = self.make_corpus()
        result = expander.expand(["Alpha", "Beta"], cutoff=10)
        # gamma and delta each co-occur with two seeds in one table.
        assert set(result.ranked_labels[:2]) == {"delta", "gamma"}

    def test_cutoff_respected(self):
        expander = self.make_corpus()
        assert len(expander.expand(["Alpha"], cutoff=1).ranked_labels) == 1

    def test_empty_seed_rejected(self):
        expander = self.make_corpus()
        with pytest.raises(ValueError):
            expander.expand(["  "])

    def test_seeds_excluded_from_output(self):
        expander = self.make_corpus()
        result = expander.expand(["Alpha"])
        assert "alpha" not in result.ranked_labels
