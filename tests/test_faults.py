"""The fault-injection registry: grammar, schedules, arming, config.

The subsystem's one promise is *determinism*: the same spec against the
same hit sequence fires at exactly the same hits, every run.  The tests
here pin the spec grammar (including its rejection messages — a chaos
matrix with a typo must fail at arm time, not silently never fire), the
window and probability schedules, the arm/disarm/restore protocol, and
the two integration seams: ``REPRO_FAULTS`` in a child process and
``PipelineConfig.faults`` through :meth:`RunSession.run`.

The ``crash`` action is deliberately *not* exercised in-process (it is
SIGKILL); the chaos suite (``test_chaos.py``) proves it against real
subprocesses.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faults
from repro.faults import (
    FaultInjected,
    FaultPlan,
    POINTS,
    arm,
    armed,
    disarm,
    fault_stats,
    parse_spec,
)
from repro.pipeline.pipeline import PipelineConfig

SRC_DIR = Path(__file__).parent.parent / "src"


@pytest.fixture(autouse=True)
def _pristine_registry():
    """Every test starts and ends disarmed (module state is global)."""
    disarm()
    yield
    disarm()


# -- spec grammar -------------------------------------------------------
class TestGrammar:
    def test_minimal_rule_defaults_to_first_hit(self):
        plan = parse_spec("artifacts.put:raise")
        (rule,) = plan._rules["artifacts.put"]
        assert (rule.first_hit, rule.last_hit) == (1, 1)
        assert rule.action == "raise"
        assert rule.probability == 1.0

    @pytest.mark.parametrize(
        "window, expected",
        [
            ("@3", (3, 3)),
            ("@2+", (2, None)),
            ("@2-5", (2, 5)),
            ("@*", (1, None)),
        ],
    )
    def test_window_forms(self, window, expected):
        plan = parse_spec(f"queue.claim:raise{window}")
        (rule,) = plan._rules["queue.claim"]
        assert (rule.first_hit, rule.last_hit) == expected

    def test_latency_parameter_and_probability_with_seed(self):
        plan = parse_spec("serve.request:latency:0.25@2+~0.5/42")
        (rule,) = plan._rules["serve.request"]
        assert rule.action == "latency"
        assert rule.param == 0.25
        assert (rule.first_hit, rule.last_hit) == (2, None)
        assert rule.probability == 0.5
        assert rule.seed == 42

    def test_multiple_rules_split_on_semicolon(self):
        plan = parse_spec(
            "artifacts.put:raise@2; queue.complete:crash ;"
        )
        assert set(plan._rules) == {"artifacts.put", "queue.complete"}

    def test_describe_round_trips_through_the_parser(self):
        spec = "serve.writer:latency:0.1@3-7~0.25/9"
        (rule,) = parse_spec(spec)._rules["serve.writer"]
        (reparsed,) = parse_spec(rule.describe())._rules["serve.writer"]
        assert reparsed.describe() == rule.describe()

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("nosuch.point:raise", "unknown injection point"),
            ("artifacts.put:explode", "unknown fault action"),
            ("artifacts.put:raise@zero", "bad hit window"),
            ("artifacts.put:raise@0", "start at >= 1"),
            ("artifacts.put:raise@5-2", "not end before it starts"),
            ("artifacts.put", "needs at least point:action"),
            ("artifacts.put:latency", "non-negative seconds"),
            ("artifacts.put:raise:3", "takes no parameter"),
            ("artifacts.put:latency:0.1:9", "too many ':' fields"),
            ("artifacts.put:raise~2.0", "must be in (0, 1]"),
            ("artifacts.put:raise~0.5/x", "not an integer"),
            ("artifacts.put:raise~fast", "not a number"),
            ("", "fault spec is empty"),
            (" ; ; ", "fault spec is empty"),
        ],
    )
    def test_rejections_name_the_offence(self, spec, fragment):
        with pytest.raises(ValueError, match=".*"):
            try:
                parse_spec(spec)
            except ValueError as error:
                assert fragment in str(error)
                raise

    def test_unknown_point_message_lists_the_inventory(self):
        with pytest.raises(ValueError) as caught:
            parse_spec("typo.point:raise")
        for point in POINTS:
            assert point in str(caught.value)


# -- schedules ----------------------------------------------------------
class TestSchedules:
    def test_exact_hit_window_fires_once(self):
        plan = parse_spec("queue.complete:raise@3")
        plan.check("queue.complete")
        plan.check("queue.complete")
        with pytest.raises(FaultInjected) as caught:
            plan.check("queue.complete")
        assert caught.value.point == "queue.complete"
        assert caught.value.hit == 3
        # Past the window the point is quiet again.
        plan.check("queue.complete")
        assert plan.stats()["points"]["queue.complete"]["fired"] == 1

    def test_open_window_fires_on_every_hit_from_n(self):
        plan = parse_spec("queue.claim:raise@2+")
        plan.check("queue.claim")
        for __ in range(3):
            with pytest.raises(FaultInjected):
                plan.check("queue.claim")

    def test_hits_are_counted_per_point(self):
        plan = parse_spec("artifacts.put:raise@2")
        # Hits on *other* points never advance this point's counter.
        plan.check("artifacts.meta_save")
        plan.check("artifacts.put")
        plan.check("artifacts.meta_save")
        with pytest.raises(FaultInjected):
            plan.check("artifacts.put")

    def test_latency_delays_and_continues(self):
        plan = parse_spec("serve.request:latency:0.05@1")
        before = time.monotonic()
        plan.check("serve.request")  # fires: sleeps, does not raise
        assert time.monotonic() - before >= 0.045
        stats = plan.stats()["points"]["serve.request"]
        assert stats == {
            "hits": 1,
            "fired": 1,
            "rules": ["serve.request:latency:0.05@1"],
        }

    def test_probabilistic_schedule_is_seed_deterministic(self):
        spec = "queue.claim:raise@*~0.4/7"

        def firing_pattern():
            plan = parse_spec(spec)
            pattern = []
            for __ in range(40):
                try:
                    plan.check("queue.claim")
                except FaultInjected:
                    pattern.append(True)
                else:
                    pattern.append(False)
            return pattern

        first, second = firing_pattern(), firing_pattern()
        assert first == second
        # It is genuinely probabilistic: neither all-fire nor never-fire.
        assert any(first) and not all(first)

    def test_different_seeds_give_different_streams(self):
        patterns = {}
        for seed in (1, 2):
            plan = parse_spec(f"queue.claim:raise@*~0.5/{seed}")
            fired = []
            for __ in range(64):
                try:
                    plan.check("queue.claim")
                except FaultInjected:
                    fired.append(True)
                else:
                    fired.append(False)
            patterns[seed] = fired
        assert patterns[1] != patterns[2]


# -- arming protocol ----------------------------------------------------
class TestArming:
    def test_disarmed_check_is_a_no_op(self):
        faults.check("artifacts.put")  # nothing armed: must not raise
        assert fault_stats() is None

    def test_armed_scope_fires_and_restores(self):
        with armed("artifacts.put:raise@1"):
            with pytest.raises(FaultInjected):
                faults.check("artifacts.put")
        faults.check("artifacts.put")  # scope over: disarmed again
        assert fault_stats() is None

    def test_nested_arming_restores_the_outer_plan(self):
        arm("queue.claim:raise@1")
        with armed("artifacts.put:raise@1"):
            faults.check("queue.claim")  # inner plan: this point is quiet
        with pytest.raises(FaultInjected):
            faults.check("queue.claim")  # outer plan restored

    def test_armed_none_is_a_transparent_scope(self):
        outer = parse_spec("queue.claim:raise@1")
        arm(outer)
        with armed(None):
            # The no-op scope must leave the surrounding plan armed —
            # PipelineConfig.faults=None runs inside exactly this.
            with pytest.raises(FaultInjected):
                faults.check("queue.claim")

    def test_arm_returns_the_previous_plan(self):
        first = parse_spec("queue.claim:raise@1")
        assert arm(first) is None
        assert arm("artifacts.put:raise@1") is first

    def test_fault_stats_reflect_the_armed_plan(self):
        with armed("serve.writer:raise@5"):
            faults.check("serve.writer")
            faults.check("serve.writer")
            stats = fault_stats()
            assert stats["spec"] == "serve.writer:raise@5"
            assert stats["points"]["serve.writer"]["hits"] == 2
            assert stats["points"]["serve.writer"]["fired"] == 0

    def test_register_point_extends_the_inventory(self):
        faults.register_point("test.extension", "a test-only point")
        try:
            plan = parse_spec("test.extension:raise@1")
            with pytest.raises(FaultInjected):
                plan.check("test.extension")
        finally:
            POINTS.pop("test.extension", None)

    def test_environment_arms_a_child_process(self):
        """``REPRO_FAULTS`` is read lazily in whatever process inherits it
        — the seam the chaos suite kills real subprocesses through."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC_DIR), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        env["REPRO_FAULTS"] = "artifacts.put:raise@2"
        script = (
            "from repro import faults\n"
            "faults.check('artifacts.put')\n"
            "try:\n"
            "    faults.check('artifacts.put')\n"
            "except faults.FaultInjected as error:\n"
            "    print('fired at hit', error.hit)\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        assert "fired at hit 2" in completed.stdout


# -- PipelineConfig integration -----------------------------------------
class TestConfigIntegration:
    def test_config_validates_the_spec_at_construction(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            PipelineConfig(faults="nosuch.point:crash")

    def test_config_normalizes_blank_to_none(self):
        assert PipelineConfig(faults="   ").faults is None
        assert PipelineConfig(faults=None).faults is None
        assert (
            PipelineConfig(faults=" artifacts.put:raise@1 ").faults
            == "artifacts.put:raise@1"
        )

    def test_faults_are_excluded_from_the_semantic_hash(self):
        """An armed plan changes whether a run *survives*, never what a
        surviving run computes — so it must not invalidate caches."""
        from repro.api import config_hash

        plain = PipelineConfig()
        wired = PipelineConfig(faults="artifacts.put:raise@1")
        assert config_hash(plain) == config_hash(wired)

    def test_session_run_arms_the_config_plan(self, tiny_world, tmp_path):
        """``config.faults`` is live for exactly the run's duration."""
        from repro.api import RunSession
        from repro.webtables import TableCorpus

        table_ids = tiny_world.tables_of_class("Song")[:4]
        session = RunSession(
            knowledge_base=tiny_world.knowledge_base,
            corpus=TableCorpus(
                [tiny_world.corpus.get(table_id) for table_id in table_ids]
            ),
        )
        session.attach_artifact_store(tmp_path / "artifacts")
        with pytest.raises(FaultInjected):
            session.run(
                "Song",
                use_cache=False,
                incremental=True,
                config=PipelineConfig(faults="artifacts.put:raise@1"),
            )
        # The plan died with its run: a faultless rerun goes through.
        result = session.run("Song", use_cache=False, incremental=True)
        assert result.summary_dict()["class_name"] == "Song"
