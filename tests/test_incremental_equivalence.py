"""Differential harness: incremental runs ≡ full rebuilds, byte for byte.

The incremental engine's correctness claim is *equivalence by
construction*: every artifact served from the persistent store is a pure
function of fingerprinted inputs, so an incremental run over any corpus
history must produce exactly the bytes a from-scratch run over the final
corpus produces.  This module attacks that claim three ways:

* a **hypothesis-driven mutation harness** — random sequences of corpus
  mutations (add / remove / replace tables) with interleaved incremental
  runs, each checked byte-for-byte (``canonical_json``) against a fresh
  full rebuild, across serial and thread executors;
* a **scripted lifecycle** covering the canonical ingest → run → delta →
  run → shrink → run sequence per executor;
* **unit coverage** of the building blocks: the artifact store, corpus
  snapshots/deltas, fingerprint sensitivity, dirty-set dispatch, and the
  store's removal API.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import RunSession
from repro.corpus.indexing import CorpusLabelIndex
from repro.corpus.store import CorpusStore
from repro.io import save_knowledge_base
from repro.io.serialize import WORLD_KB_FILE
from repro.parallel import dispatch_dirty, make_executor
from repro.pipeline.artifacts import ArtifactStore, fingerprint_evidence
from repro.pipeline.delta import (
    CorpusDelta,
    corpus_state,
    diff_corpus_states,
    fingerprint_corpus_state,
    fingerprint_records,
    invalidation_frontier,
)
from repro.synthesis.api import build_world
from repro.synthesis.profiles import WorldScale
from repro.webtables.table import WebTable

CLASS_NAME = "Song"

#: Tables ingested before the first run; the rest form the mutation pool.
N_BASE = 16


@pytest.fixture(scope="module")
def song_world():
    """A small single-class world whose tables the harness permutes."""
    return build_world(seed=11, scale=WorldScale(0.08), classes=[CLASS_NAME])


@pytest.fixture(scope="module")
def world_tables(song_world):
    return list(song_world.corpus)


def _mutated(table: WebTable, salt: int) -> WebTable:
    """The same table id with deterministically perturbed content."""
    rows = [list(row) for row in table.rows]
    if rows and rows[0]:
        cell = rows[0][0]
        rows[0][0] = f"{cell} (rev {salt})" if cell is not None else f"rev {salt}"
    rows.append(tuple(f"filler {salt}" for _ in table.header))
    return WebTable(
        table_id=table.table_id,
        header=table.header,
        rows=[tuple(row) for row in rows],
        url=table.url,
    )


def _make_store(tmp_path, world, tables):
    store = CorpusStore.create(tmp_path / "store", shards=2)
    store.ingest(tables)
    save_knowledge_base(
        world.knowledge_base, store.directory / WORLD_KB_FILE
    )
    return store


def _assert_equivalent(store, incremental_result) -> str:
    """Byte-compare an incremental result against a fresh full rebuild."""
    oracle = RunSession.from_corpus_store(store, artifacts=False)
    full = oracle.run(CLASS_NAME, use_cache=False, executor="serial")
    incremental_blob = incremental_result.canonical_json()
    assert incremental_blob == full.canonical_json()
    return incremental_blob


class TestScriptedLifecycle:
    """ingest → run → grow → run → mutate → run → shrink → run."""

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_full_lifecycle_byte_identical(
        self, tmp_path, song_world, world_tables, executor
    ):
        base, pool = world_tables[:N_BASE], world_tables[N_BASE:]
        store = _make_store(tmp_path, song_world, base)
        session = RunSession.from_corpus_store(store)

        first = session.run_incremental(CLASS_NAME, executor=executor)
        _assert_equivalent(store, first)
        report = session.last_incremental_report
        assert report.frontier is not None
        assert len(report.frontier.delta.added) == N_BASE

        # Identical corpus: the whole run must be served from the store.
        again = session.run_incremental(
            CLASS_NAME, executor=executor, use_cache=False
        )
        assert again.canonical_json() == first.canonical_json()
        assert session.last_incremental_report.stage_misses() == 0
        assert session.last_incremental_report.frontier.schema_match_reusable

        # Grow.
        grow = store.ingest(pool[:2])
        assert sorted(grow.dirty_ids) == sorted(
            table.table_id for table in pool[:2]
        )
        grown = session.run_incremental(CLASS_NAME, executor=executor)
        _assert_equivalent(store, grown)
        frontier = session.last_incremental_report.frontier
        assert set(frontier.analyze_tables) == set(grow.dirty_ids)

        # Mutate one table in place.
        victim = base[0]
        replace = store.ingest(
            [_mutated(victim, salt=1)], on_conflict="replace"
        )
        assert replace.replaced_ids == [victim.table_id]
        mutated = session.run_incremental(CLASS_NAME, executor=executor)
        _assert_equivalent(store, mutated)

        # Shrink.
        removed = store.remove_tables([base[1].table_id])
        assert removed == [base[1].table_id]
        shrunk = session.run_incremental(CLASS_NAME, executor=executor)
        _assert_equivalent(store, shrunk)
        delta = session.last_incremental_report.frontier.delta
        assert delta.removed == (base[1].table_id,)

    def test_cold_session_over_warm_store(
        self, tmp_path, song_world, world_tables
    ):
        """A new process (fresh session) reuses the persisted artifacts."""
        store = _make_store(tmp_path, song_world, world_tables[:N_BASE])
        warm = RunSession.from_corpus_store(store)
        expected = warm.run_incremental(CLASS_NAME).canonical_json()

        cold = RunSession.from_corpus_store(store)
        result = cold.run_incremental(CLASS_NAME, use_cache=False)
        assert result.canonical_json() == expected
        report = cold.last_incremental_report
        assert report.stage_misses() == 0
        assert report.analysis_computed == 0
        assert report.entities_computed == 0


#: One mutation step: an op code plus an index resolved against the
#: current store/pool state (modulo arithmetic keeps any draw valid).
_STEPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "replace", "run"]),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=6,
)


@given(steps=_STEPS, executor=st.sampled_from(["serial", "thread"]))
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[
        HealthCheck.function_scoped_fixture,
        HealthCheck.too_slow,
    ],
)
def test_random_mutation_sequences_stay_equivalent(
    tmp_path_factory, song_world, world_tables, steps, executor
):
    """Any mutation history ends byte-identical to a from-scratch run.

    The artifact store persists *across* steps, so later runs are served
    a mixture of artifacts computed under earlier corpus states — the
    exact situation where an unsound cache key would leak stale bytes.
    """
    tmp_path = tmp_path_factory.mktemp("mutseq")
    base, pool = world_tables[:N_BASE], list(world_tables[N_BASE:])
    store = _make_store(tmp_path, song_world, base)
    session = RunSession.from_corpus_store(store)
    present = [table.table_id for table in base]
    revision = 0
    ran = False

    for op, raw_index in steps:
        if op == "add" and pool:
            table = pool.pop(raw_index % len(pool))
            store.ingest([table])
            present.append(table.table_id)
        elif op == "remove" and len(present) > 2:
            table_id = present.pop(raw_index % len(present))
            store.remove_tables([table_id])
        elif op == "replace" and present:
            table_id = present[raw_index % len(present)]
            revision += 1
            store.ingest(
                [_mutated(store.get(table_id), salt=revision)],
                on_conflict="replace",
            )
        elif op == "run":
            result = session.run_incremental(CLASS_NAME, executor=executor)
            _assert_equivalent(store, result)
            ran = True
    if not ran:
        result = session.run_incremental(CLASS_NAME, executor=executor)
        _assert_equivalent(store, result)


class TestArtifactStore:
    def test_roundtrip_and_stats(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        key = ["stage", "cluster", "records", "abc123"]
        assert store.get(key) is None
        digest = store.put(key, {"clusters": [1, 2, 3]})
        assert len(digest) == 40
        assert store.get(key) == {"clusters": [1, 2, 3]}
        assert key in store
        assert len(store) == 1
        assert store.stats() == {"hits": 1, "misses": 1, "writes": 1}

    def test_distinct_keys_do_not_collide(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        store.put(["a", 1], "one")
        store.put(["a", 2], "two")
        assert store.get(["a", 1]) == "one"
        assert store.get(["a", 2]) == "two"

    def test_none_is_not_storable(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        with pytest.raises(ValueError, match="None"):
            store.put(["key"], None)

    def test_reopen_preserves_objects_and_meta(self, tmp_path):
        first = ArtifactStore(tmp_path / "artifacts")
        first.put(["key"], (1, "two"))
        first.meta_save("last_corpus_state", {"state": {"t1": "hash"}})
        second = ArtifactStore(tmp_path / "artifacts")
        assert second.get(["key"]) == (1, "two")
        assert second.meta_load("last_corpus_state") == {
            "state": {"t1": "hash"}
        }
        assert second.meta_load("never-written") is None

    def test_version_mismatch_rejected(self, tmp_path):
        directory = tmp_path / "artifacts"
        ArtifactStore(directory)
        manifest = directory / "artifact_store.json"
        manifest.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            ArtifactStore(directory)

    def test_open_sweeps_aged_orphan_tmp_files(self, tmp_path):
        """A writer killed between mkstemp and os.replace leaves a
        ``*.tmp`` behind; reopening the store reclaims it once it is
        older than the age guard — and reports it in ``describe()``."""
        directory = tmp_path / "artifacts"
        first = ArtifactStore(directory)
        first.put(["key"], "value")
        bucket = next((directory / "objects").iterdir())
        orphan_object = bucket / "deadbeef.pkl.tmp"
        orphan_object.write_bytes(b"partial write")
        orphan_meta = directory / "meta" / "snapshot.json.tmp"
        orphan_meta.write_text("{", encoding="utf-8")
        ancient = time.time() - 7200
        os.utime(orphan_object, (ancient, ancient))
        os.utime(orphan_meta, (ancient, ancient))
        second = ArtifactStore(directory)
        assert second.tmp_swept == 2
        assert not orphan_object.exists()
        assert not orphan_meta.exists()
        described = second.describe()
        assert described["tmp_swept"] == 2
        assert described["tmp_pending"] == 0
        # The real artifact survived the sweep.
        assert second.get(["key"]) == "value"

    def test_sweep_spares_young_tmp_files(self, tmp_path):
        """A fresh temp file may belong to a live writer sharing the
        store (queue worker, service) — the sweep must not touch it."""
        directory = tmp_path / "artifacts"
        ArtifactStore(directory)
        in_flight = directory / "meta" / "snapshot.json.tmp"
        in_flight.write_text("{", encoding="utf-8")
        reopened = ArtifactStore(directory)
        assert reopened.tmp_swept == 0
        assert in_flight.exists()
        assert reopened.describe()["tmp_pending"] == 1
        # An explicit zero age guard reclaims immediately.
        eager = ArtifactStore(directory, orphan_tmp_age=0.0)
        assert eager.tmp_swept == 1
        assert not in_flight.exists()


class TestCorpusDeltas:
    def test_diff_classifies_all_change_kinds(self):
        old = {"a": "1", "b": "2", "c": "3"}
        new = {"b": "2", "c": "9", "d": "4"}
        delta = diff_corpus_states(old, new)
        assert delta.added == ("d",)
        assert delta.removed == ("a",)
        assert delta.changed == ("c",)
        assert delta.dirty == ("d", "c")
        assert bool(delta)
        assert not diff_corpus_states(old, dict(old))

    def test_snapshot_fingerprint_is_order_sensitive(self):
        forward = {"a": "1", "b": "2"}
        backward = {"b": "2", "a": "1"}
        assert fingerprint_corpus_state(forward) != fingerprint_corpus_state(
            backward
        )
        assert fingerprint_corpus_state(
            forward, order=["a", "b"]
        ) == fingerprint_corpus_state(backward, order=["a", "b"])

    def test_frontier_plans_dirty_set(self):
        delta = CorpusDelta(added=("x",), changed=("y",))
        frontier = invalidation_frontier(delta)
        assert frontier.analyze_tables == ("x", "y")
        assert not frontier.schema_match_reusable
        empty = invalidation_frontier(CorpusDelta())
        assert empty.schema_match_reusable
        assert "empty" in empty.summary()

    def test_store_state_matches_generic_snapshot(self, tmp_path):
        table = WebTable(
            table_id="t1", header=("name",), rows=[("a",)], url="u"
        )
        store = CorpusStore.create(tmp_path / "store", shards=2)
        store.ingest([table])
        assert store.state() == store.content_hashes()
        assert corpus_state(store.as_corpus()) == store.state()

    def test_evidence_fingerprint_distinguishes_feedback(self):
        from repro.matching.matchers import DuplicateEvidence

        empty = DuplicateEvidence()
        loaded = DuplicateEvidence(row_instance={("t", 0): "uri:x"})
        assert fingerprint_evidence(None) != fingerprint_evidence(empty)
        assert fingerprint_evidence(empty) != fingerprint_evidence(loaded)

    def test_record_fingerprint_is_order_sensitive(self, song_world):
        from repro.matching.records import RowRecord

        records = [
            RowRecord(
                row_id=("t", index),
                table_id="t",
                label=f"l{index}",
                norm_label=f"l{index}",
                tokens=frozenset({f"l{index}"}),
            )
            for index in range(2)
        ]
        assert fingerprint_records(records) != fingerprint_records(
            records[::-1]
        )


class TestDirtySetDispatch:
    @pytest.mark.parametrize("executor_name", [None, "serial", "thread"])
    def test_merges_cached_and_fresh(self, executor_name):
        calls: list[list[int]] = []

        def double(items):
            calls.append(list(items))
            return [item * 2 for item in items]

        executor = (
            make_executor(executor_name, 2) if executor_name else None
        )
        try:
            merged = dispatch_dirty(
                double,
                [1, 2, 3, 4],
                [None, 40, None, 80],
                executor=executor,
                task_name="test",
            )
        finally:
            if executor is not None:
                executor.close()
        assert merged == [2, 40, 6, 80]
        assert [item for chunk in calls for item in chunk] == [1, 3]

    def test_all_clean_never_calls_function(self):
        def boom(items):  # pragma: no cover - must not run
            raise AssertionError("dispatched despite clean cache")

        assert dispatch_dirty(boom, [1, 2], [10, 20]) == [10, 20]

    def test_misaligned_cache_rejected(self):
        with pytest.raises(ValueError, match="cached slots"):
            dispatch_dirty(lambda items: items, [1, 2], [None])

    def test_wrong_result_count_rejected(self):
        with pytest.raises(ValueError, match="returned"):
            dispatch_dirty(lambda items: [], [1], [None])


class TestStoreRemoval:
    def _store(self, tmp_path, n=3):
        tables = [
            WebTable(
                table_id=f"t{index}",
                header=("name", "year"),
                rows=[(f"row {index}", str(2000 + index))],
                url=f"http://x/{index}",
            )
            for index in range(n)
        ]
        store = CorpusStore.create(tmp_path / "store", shards=2)
        store.ingest(tables)
        return store, tables

    def test_remove_updates_reads_and_state(self, tmp_path):
        store, tables = self._store(tmp_path)
        assert store.remove_tables(["t1"]) == ["t1"]
        assert "t1" not in store
        assert len(store) == 2
        assert "t1" not in store.state()
        with pytest.raises(KeyError):
            store.get("t1")

    def test_remove_unknown_raises_unless_missing_ok(self, tmp_path):
        store, __ = self._store(tmp_path)
        with pytest.raises(KeyError, match="nope"):
            store.remove_tables(["nope"])
        assert store.remove_tables(["nope"], missing_ok=True) == []

    def test_remove_withdraws_index_postings(self, tmp_path):
        store, tables = self._store(tmp_path)
        index = CorpusLabelIndex.build(tables)
        assert "t0" in index
        store.remove_tables(["t0"], index=index)
        assert "t0" not in index
        assert index.rows_for("row 0") == ()

    def test_view_invalidate_drops_stale_tables(self, tmp_path):
        store, tables = self._store(tmp_path)
        view = store.as_corpus()
        assert view.get("t0").rows[0][0] == "row 0"
        mutated = WebTable(
            table_id="t0",
            header=("name", "year"),
            rows=[("changed", "1999")],
            url="http://x/0",
        )
        store.ingest([mutated], on_conflict="replace")
        # The LRU still holds the pre-delta table until invalidated.
        assert view.get("t0").rows[0][0] == "row 0"
        view.invalidate(["t0"])
        assert view.get("t0").rows[0][0] == "changed"
        view.invalidate()
        assert view.cache_info()["size"] == 0

    def test_ingest_report_carries_delta_ids(self, tmp_path):
        store, tables = self._store(tmp_path)
        report = store.ingest(
            [
                tables[0],  # identical
                WebTable(
                    table_id="t1",
                    header=("name", "year"),
                    rows=[("rewritten", "1990")],
                    url="http://x/1",
                ),
                WebTable(
                    table_id="t9",
                    header=("name", "year"),
                    rows=[("fresh", "2024")],
                    url="http://x/9",
                ),
            ],
            on_conflict="replace",
        )
        assert report.inserted_ids == ["t9"]
        assert report.replaced_ids == ["t1"]
        assert report.dirty_ids == ["t9", "t1"]
        index = CorpusLabelIndex.build(iter(store))
        index.apply_ingest_report(report)  # in-sync: no raise

    def test_label_index_discard_is_tolerant(self):
        index = CorpusLabelIndex()
        assert index.discard_table("ghost") is False
        table = WebTable(
            table_id="t", header=("name",), rows=[("a",)], url="u"
        )
        index.add_table(table)
        assert index.discard_table("t") is True
        assert "t" not in index


class TestSessionGuards:
    def test_incremental_needs_artifact_store(self, song_world):
        session = RunSession(song_world)
        with pytest.raises(RuntimeError, match="artifact store"):
            session.run_incremental(CLASS_NAME)

    def test_in_memory_session_can_attach_store(
        self, tmp_path, song_world
    ):
        session = RunSession(song_world)
        session.attach_artifact_store(tmp_path / "artifacts")
        result = session.run_incremental(CLASS_NAME)
        fresh = RunSession(song_world)
        expected = fresh.run(CLASS_NAME, use_cache=False)
        assert result.canonical_json() == expected.canonical_json()

    def test_plain_run_before_first_incremental_is_not_trusted(
        self, tmp_path, song_world, world_tables
    ):
        """A mutated-store session's first incremental run must not serve
        artifacts a pre-delta plain ``run()`` left in the in-memory cache
        (regression: the epoch guard used to only arm on the *second*
        incremental run)."""
        store = _make_store(tmp_path, song_world, world_tables[:N_BASE])
        session = RunSession.from_corpus_store(store)
        stale = session.run(CLASS_NAME)  # plain run fills the caches
        store.ingest(world_tables[N_BASE : N_BASE + 2])
        result = session.run_incremental(CLASS_NAME)
        assert result.canonical_json() != stale.canonical_json()
        _assert_equivalent(store, result)

    def test_epoch_change_clears_in_memory_cache(
        self, tmp_path, song_world, world_tables
    ):
        store = _make_store(tmp_path, song_world, world_tables[:N_BASE])
        session = RunSession.from_corpus_store(store)
        session.run_incremental(CLASS_NAME)
        assert session.cache_info()["entries"] > 0
        store.ingest(world_tables[N_BASE : N_BASE + 1])
        session.run_incremental(CLASS_NAME)
        # The pre-delta in-memory artifacts were dropped, then repopulated
        # by the post-delta run.
        info = session.cache_info()
        assert info["entries"] > 0
        delta = session.last_incremental_report.frontier.delta
        assert delta.added == (world_tables[N_BASE].table_id,)
