"""The distributed queue executor: spool mechanics, crash recovery,
failure provenance, and byte-equality with the in-process backends.

Most tests run workers as in-process threads (``run_worker`` is just a
claim-and-execute loop over the shared spool — the protocol is identical
whether the loop lives in a thread or another process).  The crash test
is the exception: it launches a real ``python -m repro worker``
subprocess and SIGKILLs it mid-chunk, proving the lease-expiry path
against an actual vanished process.
"""

from __future__ import annotations

import contextlib
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from queue_worker_helpers import explode_on_seven, holding_batch, square_batch
from repro.api import RunSession
from repro.parallel import (
    ExecutorError,
    QueueExecutor,
    WorkQueue,
    queue_stats,
    run_worker,
)
from repro.pipeline.pipeline import PipelineConfig
from repro.webtables import TableCorpus

TESTS_DIR = Path(__file__).parent
SRC_DIR = TESTS_DIR.parent / "src"


@contextlib.contextmanager
def worker_threads(spool, count=2, **kwargs):
    """In-process worker fleet over a spool; stops and joins on exit."""
    stop = threading.Event()
    options = {"stop": stop, "poll_interval": 0.01, **kwargs}
    threads = [
        threading.Thread(
            target=run_worker,
            args=(spool,),
            kwargs=options,
            name=f"test-worker-{index}",
            daemon=True,
        )
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    try:
        yield stop
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)


def fast_queue_executor(spool, **kwargs):
    options = {
        "poll_interval": 0.01,
        "lease_seconds": 5.0,
        "no_worker_timeout": 30.0,
        **kwargs,
    }
    return QueueExecutor(spool, workers=2, **options)


# -- the spool protocol, driven directly --------------------------------
class TestWorkQueue:
    def test_enqueue_claim_complete_roundtrip(self, tmp_path):
        with WorkQueue(tmp_path) as queue:
            queue.create_batch("batch-1")
            payload = queue.payload_dir / "batch-1-0.pkl"
            payload.write_bytes(b"payload")
            task_id = queue.enqueue("batch-1", "demo", 0, payload)
            queue.register_worker("w1")
            claimed = queue.claim("w1", lease_seconds=30.0)
            assert claimed is not None
            assert claimed.task_id == task_id
            assert claimed.task_name == "demo"
            assert claimed.chunk_index == 0
            assert claimed.attempts == 1
            # Nothing else to claim while the task is running.
            assert queue.claim("w1", lease_seconds=30.0) is None
            result = queue.result_dir / f"{task_id}.pkl"
            result.write_bytes(b"result")
            assert queue.complete(task_id, "w1", result)
            finished = queue.fetch_finished("batch-1")
            assert [f.status for f in finished] == ["done"]
            assert finished[0].result_path == str(result)
            stats = queue.stats()
            assert stats["done"] == 1
            assert stats["depth"] == 0
            assert stats["workers"][0]["tasks_done"] == 1

    def test_claim_skips_stale_batches(self, tmp_path):
        with WorkQueue(tmp_path) as queue:
            queue.create_batch("orphaned")
            payload = queue.payload_dir / "p.pkl"
            payload.write_bytes(b"payload")
            queue.enqueue("orphaned", "demo", 0, payload)
            queue.register_worker("w1")
            # The driver stopped heartbeating long ago: nobody will ever
            # collect this chunk, so the worker must not grind on it.
            queue._conn.execute(
                "UPDATE batches SET heartbeat = heartbeat - 3600"
            )
            assert queue.claim("w1", lease_seconds=30.0) is None
            # A heartbeat revives the batch.
            queue.touch_batch("orphaned")
            assert queue.claim("w1", lease_seconds=30.0) is not None

    def test_expired_lease_requeues_then_exhausts(self, tmp_path):
        with WorkQueue(tmp_path) as queue:
            queue.create_batch("batch-1")
            payload = queue.payload_dir / "p.pkl"
            payload.write_bytes(b"payload")
            queue.enqueue("batch-1", "demo", 0, payload, max_attempts=2)
            queue.register_worker("dying")
            # First claim: lease runs out, chunk goes back to pending.
            assert queue.claim("dying", lease_seconds=0.0) is not None
            assert queue.expire_leases() == 1
            (status,) = queue._conn.execute(
                "SELECT status FROM tasks"
            ).fetchone()
            assert status == "pending"
            # Second (= max_attempts'th) claim: expiry is terminal.
            assert queue.claim("dying", lease_seconds=0.0) is not None
            assert queue.expire_leases() == 1
            finished = queue.fetch_finished("batch-1")
            assert [f.status for f in finished] == ["failed"]
            assert "presumed dead" in finished[0].error
            assert "2 attempt(s)" in finished[0].error
            assert queue.stats()["lease_expiries"] == 2

    def test_stale_owner_cannot_overwrite_reassigned_task(self, tmp_path):
        with WorkQueue(tmp_path) as queue:
            queue.create_batch("batch-1")
            payload = queue.payload_dir / "p.pkl"
            payload.write_bytes(b"payload")
            task_id = queue.enqueue("batch-1", "demo", 0, payload)
            queue.register_worker("slow")
            queue.register_worker("fast")
            assert queue.claim("slow", lease_seconds=0.0) is not None
            queue.expire_leases()
            claimed = queue.claim("fast", lease_seconds=30.0)
            assert claimed is not None and claimed.attempts == 2
            # The presumed-dead worker wakes up and tries to report.
            assert not queue.extend_lease(task_id, "slow", 30.0)
            assert not queue.complete(task_id, "slow", "stale.pkl")
            assert not queue.fail(task_id, "slow", "stale error")
            # The task still belongs to the retry.
            (status,) = queue._conn.execute(
                "SELECT status FROM tasks"
            ).fetchone()
            assert status == "running"

    def test_queue_stats_without_spool(self, tmp_path):
        assert queue_stats(tmp_path / "never-created") is None


# -- the executor against an in-process fleet ---------------------------
class TestQueueExecutor:
    def test_results_in_input_order(self, tmp_path):
        executor = fast_queue_executor(tmp_path)
        items = list(range(57))
        with worker_threads(tmp_path, count=2):
            results = executor.map_batches(
                square_batch, items, chunk_size=5, task_name="squares"
            )
        assert results == [value * value for value in items]
        stats = queue_stats(tmp_path)
        assert stats["depth"] == 0
        assert stats["lease_expiries"] == 0

    def test_deterministic_error_fails_fast_with_provenance(self, tmp_path):
        """An exception *in* the batch function is not retried — it
        surfaces once, as ``ExecutorError`` naming task, chunk, items,
        and the worker that reported it."""
        executor = fast_queue_executor(tmp_path)
        with worker_threads(tmp_path, count=1):
            with pytest.raises(ExecutorError) as caught:
                executor.map_batches(
                    explode_on_seven,
                    list(range(12)),
                    chunk_size=4,
                    task_name="demo",
                    label=lambda value: f"item-{value}",
                )
        error = caught.value
        assert error.task_name == "demo"
        assert error.chunk_index == 1  # 7 lives in [4, 5, 6, 7]
        assert "item-7" in error.item_labels
        assert "seven is right out" in str(error)
        assert "on worker" in str(error.__cause__)
        assert error.__cause__.remote_type == "ValueError"
        assert "explode_on_seven" in error.__cause__.remote_traceback

    def test_no_workers_fails_with_actionable_error(self, tmp_path):
        executor = fast_queue_executor(tmp_path, no_worker_timeout=0.2)
        with pytest.raises(ExecutorError) as caught:
            executor.map_batches(square_batch, [1, 2, 3], chunk_size=1)
        message = str(caught.value.__cause__)
        assert "no live worker" in message
        assert "repro worker --queue" in message
        assert str(tmp_path) in message

    def test_pipeline_bytes_identical_to_serial(self, tmp_path, tiny_world):
        """The acceptance criterion: a full pipeline run routed through
        the queue matches the serial run byte for byte."""
        table_ids = tiny_world.tables_of_class("Song")[:6]
        corpus = TableCorpus(
            [tiny_world.corpus.get(table_id) for table_id in table_ids]
        )
        blobs = {}
        spool = tmp_path / "queue"
        for name in ("serial", "queue"):
            session = RunSession(
                knowledge_base=tiny_world.knowledge_base,
                corpus=corpus,
                config=PipelineConfig(
                    executor=name, workers=2, queue_dir=str(spool)
                ),
            )
            if name == "queue":
                with worker_threads(spool, count=2):
                    blobs[name] = session.run(
                        "Song", use_cache=False
                    ).canonical_json()
            else:
                blobs[name] = session.run(
                    "Song", use_cache=False
                ).canonical_json()
        assert blobs["serial"] == blobs["queue"]

    def test_worker_idle_timeout_and_max_tasks(self, tmp_path):
        # An idle worker with a timeout returns instead of spinning.
        assert run_worker(tmp_path, idle_timeout=0.05, poll_interval=0.01) == 0
        # max_tasks bounds a drain-style worker.
        executor = fast_queue_executor(tmp_path)
        collected = {}

        def drive():
            collected["results"] = executor.map_batches(
                square_batch, list(range(6)), chunk_size=2
            )

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        done = 0
        deadline = time.monotonic() + 30.0
        while done < 3 and time.monotonic() < deadline:
            done += run_worker(
                tmp_path, max_tasks=1, idle_timeout=0.2, poll_interval=0.01
            )
        driver.join(timeout=30.0)
        assert done == 3
        assert collected["results"] == [v * v for v in range(6)]


# -- crash recovery against a real killed process -----------------------
def _spawn_worker_process(spool, *, lease="1.0"):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR), str(TESTS_DIR), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--queue",
            str(spool),
            "--lease",
            lease,
            "--poll",
            "0.05",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestWorkerCrashRecovery:
    def test_killed_worker_chunk_is_released_and_retried(self, tmp_path):
        """SIGKILL a worker mid-chunk: the lease expires, the chunk is
        re-queued, a second worker completes it, and the driver's output
        is exactly what an uninterrupted run produces."""
        spool = tmp_path / "queue"
        control = tmp_path / "control"
        control.mkdir()
        (control / "hold").touch()
        items = [(value, str(control)) for value in range(4)]
        executor = fast_queue_executor(
            spool, lease_seconds=1.0, no_worker_timeout=120.0
        )
        outcome = {}

        def drive():
            try:
                outcome["results"] = executor.map_batches(
                    holding_batch, items, chunk_size=len(items)
                )
            except BaseException as error:  # pragma: no cover - diagnostics
                outcome["error"] = error

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        victim = _spawn_worker_process(spool, lease="1.0")
        try:
            deadline = time.monotonic() + 60.0
            started = None
            while time.monotonic() < deadline:
                started = next(control.glob("started-*"), None)
                if started is not None:
                    break
                time.sleep(0.05)
            assert started is not None, "worker never started the chunk"
            assert int(started.read_text()) == victim.pid
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30.0)
            started.unlink()
            (control / "hold").unlink()
            # A healthy worker picks up the re-queued chunk.
            with worker_threads(spool, count=1, lease_seconds=1.0):
                driver.join(timeout=120.0)
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup
                victim.kill()
            driver.join(timeout=5.0)
        assert "error" not in outcome, outcome.get("error")
        assert outcome["results"] == [value * value for value in range(4)]
        # The retry ran in this (test) process, not the killed one.
        retried = next(control.glob("started-*"))
        assert int(retried.read_text()) == os.getpid()
        # Counters survive batch cleanup: the expiry is on the record.
        assert queue_stats(spool)["lease_expiries"] >= 1

    def test_exhausted_retries_surface_with_provenance(self, tmp_path):
        """When every allowed claim dies, the driver raises
        ``ExecutorError`` naming the task, the chunk, and the presumed
        dead worker — it does not hang."""
        spool = tmp_path / "queue"
        executor = fast_queue_executor(
            spool, lease_seconds=0.1, max_attempts=1, no_worker_timeout=120.0
        )
        stop = threading.Event()

        def zombie():
            # Claims the chunk, heartbeats (so the driver sees a live
            # worker), but never extends the lease or reports a result —
            # an OOM-stalled or wedged process, as seen from the spool.
            with WorkQueue(spool) as queue:
                queue.register_worker("zombie")
                claimed = None
                while claimed is None and not stop.is_set():
                    queue.heartbeat_worker("zombie")
                    claimed = queue.claim("zombie", lease_seconds=0.1)
                    time.sleep(0.01)
                while not stop.is_set():
                    queue.heartbeat_worker("zombie")
                    time.sleep(0.05)

        wedged = threading.Thread(target=zombie, daemon=True)
        wedged.start()
        try:
            with pytest.raises(ExecutorError) as caught:
                executor.map_batches(
                    square_batch,
                    [1, 2, 3],
                    chunk_size=3,
                    task_name="doomed",
                    label=lambda value: f"item-{value}",
                )
        finally:
            stop.set()
            wedged.join(timeout=10.0)
        error = caught.value
        assert error.task_name == "doomed"
        assert error.chunk_index == 0
        assert "item-1" in error.item_labels
        cause = error.__cause__
        assert "presumed dead" in str(cause)
        assert "'zombie'" in str(cause)
        assert cause.remote_type == "LeaseExpired"
