"""Tests for persistence round-trips and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.datatypes import DateValue
from repro.io import (
    load_corpus,
    load_gold_standard,
    load_knowledge_base,
    save_corpus,
    save_gold_standard,
    save_knowledge_base,
)
from repro.io.serialize import decode_value, encode_value


class TestValueEncoding:
    def test_date_round_trip(self):
        for value in (DateValue(1987), DateValue(1987, 3, 14)):
            assert decode_value(encode_value(value)) == value

    def test_scalars_pass_through(self):
        for value in ("text", 42, 3.14, True, None):
            assert decode_value(encode_value(value)) == value

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())


class TestCorpusRoundTrip:
    def test_round_trip(self, tiny_world, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_corpus(tiny_world.corpus, path)
        loaded = load_corpus(path)
        assert len(loaded) == len(tiny_world.corpus)
        for table_id in tiny_world.corpus.table_ids()[:10]:
            original = tiny_world.corpus.get(table_id)
            restored = loaded.get(table_id)
            assert restored.header == original.header
            assert restored.rows == original.rows
            assert restored.url == original.url


class TestKnowledgeBaseRoundTrip:
    def test_round_trip(self, tiny_world, tmp_path):
        path = tmp_path / "kb.json"
        save_knowledge_base(tiny_world.knowledge_base, path)
        loaded = load_knowledge_base(path)
        assert len(loaded) == len(tiny_world.knowledge_base)
        for class_name in ("Song", "Settlement"):
            original = tiny_world.knowledge_base.instances_of(class_name)
            restored = loaded.instances_of(class_name)
            assert len(original) == len(restored)
        sample = tiny_world.knowledge_base.instances_of("Song")[0]
        restored = loaded.get(sample.uri)
        assert restored.facts == sample.facts
        assert restored.labels == sample.labels
        assert restored.page_links == sample.page_links

    def test_schema_preserved(self, tiny_world, tmp_path):
        path = tmp_path / "kb.json"
        save_knowledge_base(tiny_world.knowledge_base, path)
        loaded = load_knowledge_base(path)
        original_schema = tiny_world.knowledge_base.schema
        assert loaded.schema.ancestry("Song") == original_schema.ancestry("Song")
        original_props = original_schema.properties_of("Settlement")
        loaded_props = loaded.schema.properties_of("Settlement")
        assert set(original_props) == set(loaded_props)
        assert (
            loaded_props["populationTotal"].tolerance
            == original_props["populationTotal"].tolerance
        )


class TestGoldStandardRoundTrip:
    def test_round_trip(self, song_gold, tmp_path):
        path = tmp_path / "gold.json"
        save_gold_standard(song_gold, path)
        loaded = load_gold_standard(path)
        assert loaded.class_name == song_gold.class_name
        assert loaded.table_ids == song_gold.table_ids
        assert len(loaded.clusters) == len(song_gold.clusters)
        assert loaded.attribute_correspondences == (
            song_gold.attribute_correspondences
        )
        assert loaded.facts == song_gold.facts

    def test_file_is_plain_json(self, song_gold, tmp_path):
        path = tmp_path / "gold.json"
        save_gold_standard(song_gold, path)
        document = json.loads(path.read_text())
        assert document["class_name"] == "Song"


class TestWorldDirectoryRoundTrip:
    def test_round_trip(self, tiny_world, tmp_path):
        from repro.io import load_world_directory, save_world_directory

        directory = save_world_directory(tiny_world, tmp_path / "world")
        kb, corpus = load_world_directory(directory)
        assert len(kb) == len(tiny_world.knowledge_base)
        assert len(corpus) == len(tiny_world.corpus)


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_run_rejects_unknown_stage(self, capsys):
        assert main(["run", "Song", "--stages", "bogus"]) == 2
        assert "unknown stage" in capsys.readouterr().out

    def test_run_rejects_bad_iterations(self, capsys):
        assert main(["run", "Song", "--iterations", "0"]) == 2
        assert "iterations" in capsys.readouterr().out

    def test_run_json_round_trips(self, capsys):
        exit_code = main(
            ["run", "Song", "Settlement", "--scale", "0.1", "--seed", "3",
             "--iterations", "1", "--stages", "schema_match,cluster,fuse",
             "--json", "--quiet"]
        )
        assert exit_code == 0
        document = json.loads(capsys.readouterr().out)
        assert [entry["class_name"] for entry in document["results"]] == [
            "Song", "Settlement",
        ]
        for entry in document["results"]:
            assert entry["iterations"] == 1
            assert entry["entities"] >= 0
        assert set(document["stage_seconds"]) == {
            "schema_match", "cluster", "fuse",
        }

    def test_experiment_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_experiment_command_runs(self, capsys):
        exit_code = main(["experiment", "table03", "--scale", "0.25"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table 3" in output

    def test_build_world_writes_files(self, tmp_path, capsys):
        exit_code = main(
            ["build-world", "--scale", "0.1", "--seed", "3",
             "--output", str(tmp_path / "world")]
        )
        assert exit_code == 0
        assert (tmp_path / "world" / "corpus.jsonl").exists()
        assert (tmp_path / "world" / "knowledge_base.json").exists()
        assert (tmp_path / "world" / "gold_Song.json").exists()


class TestCLIIngestJson:
    """`repro ingest --json` emits the full shared IngestReport shape —
    the same document `POST /ingest` on the service answers with."""

    @pytest.fixture()
    def corpus_jsonl(self, tiny_world, tmp_path):
        path = tmp_path / "tables.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for table in list(tiny_world.corpus)[:4]:
                handle.write(json.dumps({
                    "table_id": table.table_id,
                    "header": list(table.header),
                    "rows": [list(row) for row in table.rows],
                    "url": table.url,
                }) + "\n")
        return path

    def test_ingest_json_reports_table_ids(
        self, corpus_jsonl, tmp_path, capsys
    ):
        store = tmp_path / "store"
        exit_code = main(
            ["ingest", str(corpus_jsonl), "--store", str(store), "--json"]
        )
        assert exit_code == 0
        document = json.loads(capsys.readouterr().out)
        report = document["report"]
        assert report["inserted"] == 4
        assert len(report["inserted_ids"]) == 4
        assert report["replaced_ids"] == []
        assert sorted(report["dirty_ids"]) == sorted(report["inserted_ids"])
        assert document["tables"] == 4

    def test_reingest_replace_reports_dirty_ids(
        self, corpus_jsonl, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert main(
            ["ingest", str(corpus_jsonl), "--store", str(store), "--json"]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            ["ingest", str(corpus_jsonl), "--store", str(store),
             "--json", "--on-conflict", "replace"]
        )
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)["report"]
        # Identical bytes are recognized, not re-written: nothing dirty.
        assert report["inserted"] == 0
        assert report["identical"] == 4
        assert report["dirty_ids"] == []


class TestCLIInterrupt:
    """Ctrl-C exits cleanly: no traceback, exit code 130."""

    def test_run_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_run", interrupted)
        assert main(["run", "Song"]) == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err

    def test_serve_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_serve", interrupted)
        assert main(["serve", "--store", "unused"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_serve_missing_store_is_an_error(self, tmp_path, capsys):
        exit_code = main(["serve", "--store", str(tmp_path / "missing")])
        assert exit_code == 2
        assert "error" in capsys.readouterr().out


class TestCLITrace:
    """`repro run --trace` records a log `repro trace` can render and
    export; `repro ingest --trace` does the same for shard writes."""

    @pytest.fixture()
    def run_log(self, tmp_path, capsys):
        path = tmp_path / "run.ndjson"
        assert main(
            ["run", "Song", "--scale", "0.1", "--seed", "3",
             "--iterations", "1", "--quiet", "--trace", str(path)]
        ) == 0
        capsys.readouterr()
        return path

    def test_run_trace_json_reports_log(self, tmp_path, capsys):
        path = tmp_path / "run.ndjson"
        assert main(
            ["run", "Song", "--scale", "0.1", "--seed", "3",
             "--iterations", "1", "--quiet", "--json",
             "--trace", str(path)]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["traces"]["Song"]["path"] == str(path)
        assert document["traces"]["Song"]["events"] > 0
        assert path.is_file()

    def test_trace_renders_tree(self, run_log, capsys):
        assert main(["trace", str(run_log)]) == 0
        output = capsys.readouterr().out
        assert "run:Song (run," in output
        assert "pipeline:Song (pipeline," in output
        assert "└─" in output or "├─" in output

    def test_trace_resolves_directory_and_run_id(
        self, run_log, tmp_path, capsys
    ):
        # Directory form: traces/ inside the target, picked by --run.
        traces = tmp_path / "artifacts" / "traces"
        traces.mkdir(parents=True)
        (traces / "run-0001.ndjson").write_text(run_log.read_text())
        assert main(
            ["trace", str(tmp_path), "--run", "run-0001"]
        ) == 0
        assert "run:Song" in capsys.readouterr().out
        assert main(["trace", str(tmp_path), "--run", "run-0002"]) == 2
        assert "run-0002" in capsys.readouterr().out

    def test_trace_chrome_export(self, run_log, tmp_path, capsys):
        output = tmp_path / "chrome.json"
        assert main(
            ["trace", str(run_log), "--chrome", str(output)]
        ) == 0
        # --chrome alone suppresses the tree.
        assert capsys.readouterr().out == ""
        document = json.loads(output.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document["traceEvents"]
        phases = {entry["ph"] for entry in document["traceEvents"]}
        assert phases <= {"X", "i"}

    def test_trace_summary(self, run_log, capsys):
        assert main(["trace", str(run_log), "--summary"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spans"] > 0
        assert "stage" in document["by_kind"]

    def test_trace_missing_is_an_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.ndjson")]) == 2
        assert "error" in capsys.readouterr().out

    def test_ingest_trace_records_shard_spans(
        self, tiny_world, tmp_path, capsys
    ):
        jsonl = tmp_path / "tables.jsonl"
        with jsonl.open("w", encoding="utf-8") as handle:
            for table in list(tiny_world.corpus)[:6]:
                handle.write(json.dumps({
                    "table_id": table.table_id,
                    "header": list(table.header),
                    "rows": [list(row) for row in table.rows],
                    "url": table.url,
                }) + "\n")
        log = tmp_path / "ingest.ndjson"
        assert main(
            ["ingest", str(jsonl), "--store", str(tmp_path / "store"),
             "--trace", str(log)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(log)]) == 0
        output = capsys.readouterr().out
        assert "ingest_batch (ingest," in output
        assert "shard-" in output
