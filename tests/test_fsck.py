"""`repro fsck`: every documented corruption class detected and repaired.

The acceptance criterion is two-sided.  *Detection*: for each corruption
class the docstring of :mod:`repro.fsck` documents, a deliberately
corrupted fixture must produce exactly that finding.  *Repair*: after
``repair=True`` the same store must verify clean, with the corrupt bytes
parked under ``quarantine/`` (nothing fsck does is unrecoverable by
hand) — and where the store's own redundancy allows it (corpus rows,
artifact objects), the pruned state must be restorable to full
equivalence by re-running the producer.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.corpus.store import CorpusStore, content_hash, shard_of
from repro.fsck import run_fsck
from repro.io import load_world_directory, save_knowledge_base
from repro.io.serialize import WORLD_KB_FILE
from repro.parallel import WorkQueue
from repro.pipeline.artifacts import ArtifactStore

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def golden_world():
    return load_world_directory(GOLDEN_DIR / "world")


@pytest.fixture()
def store(golden_world, tmp_path) -> CorpusStore:
    """A fresh two-shard corpus store of the committed golden world."""
    knowledge_base, corpus = golden_world
    store = CorpusStore.create(tmp_path / "store", shards=2)
    store.ingest(iter(corpus))
    save_knowledge_base(knowledge_base, store.directory / WORLD_KB_FILE)
    yield store
    store.close()


def kinds(report) -> list[str]:
    return [finding.kind for finding in report.findings]


def corrupt_one_row(store: CorpusStore, column: str, value) -> tuple[str, int]:
    """Overwrite ``column`` of the first row of shard 0; returns (id, shard)."""
    store.close()  # release WAL handles before editing behind its back
    shard_path = store.directory / "shard-000.sqlite"
    connection = sqlite3.connect(shard_path)
    with connection:
        (table_id,) = connection.execute(
            "SELECT table_id FROM tables ORDER BY seq LIMIT 1"
        ).fetchone()
        connection.execute(
            f"UPDATE tables SET {column} = ? WHERE table_id = ?",
            (value, table_id),
        )
    connection.close()
    return table_id, 0


# -- corpus corruption classes ------------------------------------------
class TestCorpus:
    def test_pristine_store_is_clean_with_real_coverage(self, store):
        report = run_fsck(store.directory)
        assert report.clean
        assert report.findings == []
        assert report.checked["corpus"]["shards"] == 2
        assert report.checked["corpus"]["tables"] == len(store)

    def test_payload_undecodable(self, store):
        corrupt_one_row(store, "payload", "this is not json")
        report = run_fsck(store.directory)
        assert not report.clean
        assert kinds(report) == ["payload_undecodable"]

    def test_content_hash_mismatch(self, store):
        corrupt_one_row(store, "content_hash", "0" * 40)
        report = run_fsck(store.directory)
        assert not report.clean
        assert kinds(report) == ["content_hash_mismatch"]

    def test_duplicate_table(self, store):
        store.close()
        source = sqlite3.connect(store.directory / "shard-000.sqlite")
        row = source.execute(
            "SELECT table_id, seq, content_hash, n_rows, n_columns, url, "
            "payload FROM tables ORDER BY seq LIMIT 1"
        ).fetchone()
        source.close()
        target = sqlite3.connect(store.directory / "shard-001.sqlite")
        with target:
            target.execute(
                "INSERT INTO tables (table_id, seq, content_hash, n_rows, "
                "n_columns, url, payload) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (row[0], 99999, *row[2:]),
            )
        target.close()
        report = run_fsck(store.directory)
        assert not report.clean
        # The copy in the row's rightful shard scans clean; the stray one
        # is flagged as the duplicate.
        assert kinds(report) == ["duplicate_table"]

    def test_misplaced_table(self, store):
        store.close()
        source = sqlite3.connect(store.directory / "shard-000.sqlite")
        rows = source.execute(
            "SELECT table_id, seq, content_hash, n_rows, n_columns, url, "
            "payload FROM tables ORDER BY seq"
        ).fetchall()
        victim = next(
            row for row in rows if shard_of(row[0], 2) == 0
        )
        with source:
            source.execute(
                "DELETE FROM tables WHERE table_id = ?", (victim[0],)
            )
        source.close()
        target = sqlite3.connect(store.directory / "shard-001.sqlite")
        with target:
            target.execute(
                "INSERT INTO tables (table_id, seq, content_hash, n_rows, "
                "n_columns, url, payload) VALUES (?, ?, ?, ?, ?, ?, ?)",
                victim,
            )
        target.close()
        report = run_fsck(store.directory)
        assert not report.clean
        assert kinds(report) == ["misplaced_table"]

    def test_shard_missing(self, store):
        store.close()
        (store.directory / "shard-001.sqlite").unlink()
        report = run_fsck(store.directory)
        assert not report.clean
        assert "shard_missing" in kinds(report)

    def test_shard_unreadable(self, store):
        store.close()
        (store.directory / "shard-001.sqlite").write_bytes(
            b"garbage " * 1024
        )
        report = run_fsck(store.directory)
        assert not report.clean
        assert "shard_unreadable" in kinds(report)

    def test_manifest_unreadable(self, store):
        store.close()
        (store.directory / "corpus_store.json").write_text("{broken")
        report = run_fsck(store.directory)
        assert not report.clean
        assert kinds(report) == ["manifest_unreadable"]

    def test_manifest_missing_with_shards_present(self, store):
        store.close()
        (store.directory / "corpus_store.json").unlink()
        report = run_fsck(store.directory)
        assert not report.clean
        assert kinds(report) == ["manifest_missing"]

    @pytest.mark.parametrize(
        "corruption",
        ["payload", "hash", "shard_bytes", "shard_gone"],
    )
    def test_repair_quarantines_then_reingest_restores(
        self, store, golden_world, corruption
    ):
        """Repair prunes (never silently rewrites), and because corpus
        rows are content-addressed and ingest is idempotent, re-ingesting
        the source restores the exact pre-corruption state."""
        __, corpus = golden_world
        expected_hashes = dict(store.content_hashes())
        directory = store.directory
        if corruption == "payload":
            corrupt_one_row(store, "payload", "junk")
        elif corruption == "hash":
            corrupt_one_row(store, "content_hash", "f" * 40)
        elif corruption == "shard_bytes":
            store.close()
            (directory / "shard-000.sqlite").write_bytes(b"\x00" * 4096)
        else:
            store.close()
            (directory / "shard-000.sqlite").unlink()
        report = run_fsck(directory, repair=True)
        assert report.clean
        assert all(finding.repaired for finding in report.findings)
        assert (directory / "quarantine").exists() or corruption == (
            "shard_gone"
        )
        # Clean after repair — and still clean on a fresh pass.
        assert run_fsck(directory).clean
        reopened = CorpusStore.open(directory)
        try:
            reopened.ingest(iter(corpus))
            assert dict(reopened.content_hashes()) == expected_hashes
        finally:
            reopened.close()
        assert run_fsck(directory).clean


# -- artifact-store corruption classes ----------------------------------
@pytest.fixture()
def artifacts(tmp_path) -> ArtifactStore:
    store = ArtifactStore(tmp_path / "artifacts")
    store.put(["stage", 1], {"payload": list(range(8))})
    store.put(["stage", 2], {"payload": "two"})
    store.meta_save("last_corpus_state", {"epoch": 3})
    return store


class TestArtifacts:
    def test_pristine_artifacts_are_clean(self, artifacts):
        report = run_fsck(artifacts.directory)
        assert report.clean
        assert report.checked["artifacts"]["objects"] == 2
        assert report.checked["artifacts"]["meta"] == 1

    def test_object_undecodable(self, artifacts):
        victim = next(artifacts.directory.glob("objects/*/*.pkl"))
        victim.write_bytes(b"not a pickle")
        report = run_fsck(artifacts.directory)
        assert not report.clean
        assert kinds(report) == ["object_undecodable"]
        repaired = run_fsck(artifacts.directory, repair=True)
        assert repaired.clean
        assert list(
            (artifacts.directory / "quarantine" / "artifacts").iterdir()
        )
        # The pruned entry is recomputed on the next put — same key,
        # same digest, same path.
        artifacts.put(["stage", 1], {"payload": list(range(8))})
        artifacts.put(["stage", 2], {"payload": "two"})
        assert run_fsck(artifacts.directory).clean
        assert len(list(artifacts.directory.glob("objects/*/*.pkl"))) == 2

    def test_object_misplaced(self, artifacts):
        victim = next(artifacts.directory.glob("objects/*/*.pkl"))
        wrong = artifacts.directory / "objects" / "zz"
        wrong.mkdir()
        victim.rename(wrong / victim.name)
        report = run_fsck(artifacts.directory)
        assert not report.clean
        assert kinds(report) == ["object_misplaced"]
        assert run_fsck(artifacts.directory, repair=True).clean

    def test_orphan_tmp_is_a_warning_not_an_error(self, artifacts):
        prefix_dir = next(artifacts.directory.glob("objects/*"))
        (prefix_dir / "interrupted.tmp").write_bytes(b"partial write")
        report = run_fsck(artifacts.directory)
        # An interrupted writer leaves no torn object — the store stays
        # clean; the leftover is surfaced, not escalated.
        assert report.clean
        (finding,) = report.findings
        assert finding.kind == "orphan_tmp"
        assert finding.severity == "warn"
        repaired = run_fsck(artifacts.directory, repair=True)
        assert repaired.findings[0].repaired
        assert not list(artifacts.directory.glob("objects/*/*.tmp"))

    def test_meta_unreadable(self, artifacts):
        (artifacts.directory / "meta" / "last_corpus_state.json").write_text(
            "{torn"
        )
        report = run_fsck(artifacts.directory)
        assert not report.clean
        assert kinds(report) == ["meta_unreadable"]
        assert run_fsck(artifacts.directory, repair=True).clean

    def test_manifest_unreadable_is_rewritten(self, artifacts):
        (artifacts.directory / "artifact_store.json").write_text("[]")
        report = run_fsck(artifacts.directory)
        assert not report.clean
        assert "manifest_unreadable" in kinds(report)
        assert run_fsck(artifacts.directory, repair=True).clean
        document = json.loads(
            (artifacts.directory / "artifact_store.json").read_text()
        )
        assert document["version"] == 1


# -- queue-spool corruption classes -------------------------------------
@pytest.fixture()
def spool(tmp_path) -> WorkQueue:
    queue = WorkQueue(tmp_path / "queue")
    queue.create_batch("batch-1")
    payload = queue.payload_dir / "chunk-0.pkl"
    payload.write_bytes(pickle.dumps("chunk payload"))
    queue.enqueue("batch-1", "demo", 0, payload)
    yield queue
    queue.close()


class TestQueue:
    def test_pristine_spool_is_clean(self, spool):
        report = run_fsck(spool.directory)
        assert report.clean
        assert report.checked["queue"]["tasks"] == 1

    def test_payload_missing(self, spool):
        Path(spool.payload_dir / "chunk-0.pkl").unlink()
        report = run_fsck(spool.directory)
        assert not report.clean
        assert kinds(report) == ["payload_missing"]
        assert run_fsck(spool.directory, repair=True).clean
        finished = spool.fetch_finished("batch-1")
        assert [task.status for task in finished] == ["failed"]
        assert "marked failed by fsck" in finished[0].error

    def test_result_missing_resets_to_pending(self, spool):
        spool.register_worker("w1")
        claimed = spool.claim("w1", lease_seconds=30.0)
        result = spool.result_dir / f"{claimed.task_id}.pkl"
        result.write_bytes(pickle.dumps("result"))
        assert spool.complete(claimed.task_id, "w1", result)
        result.unlink()
        report = run_fsck(spool.directory)
        assert not report.clean
        assert kinds(report) == ["result_missing"]
        assert run_fsck(spool.directory, repair=True).clean
        # The task is claimable again — a worker recomputes the result.
        assert spool.claim("w1", lease_seconds=30.0) is not None

    def test_stale_running_lease_is_a_warning(self, spool):
        spool.register_worker("w1")
        spool.claim("w1", lease_seconds=30.0)
        spool._conn.execute(
            "UPDATE tasks SET lease_expires = ?", (time.time() - 60.0,)
        )
        report = run_fsck(spool.directory)
        assert report.clean
        (finding,) = report.findings
        assert finding.kind == "stale_running"
        assert finding.severity == "warn"

    def test_database_unreadable(self, spool):
        spool.close()
        spool.database_path.write_bytes(b"\xde\xad" * 512)
        for sidecar in ("-wal", "-shm"):
            side = spool.database_path.with_name(
                spool.database_path.name + sidecar
            )
            if side.exists():
                side.unlink()
        report = run_fsck(spool.directory)
        assert not report.clean
        assert kinds(report) == ["database_unreadable"]
        assert run_fsck(spool.directory, repair=True).clean
        assert not spool.database_path.exists()


# -- service journal ----------------------------------------------------
class TestServiceJournal:
    def test_journal_unreadable_quarantined(self, tmp_path):
        artifacts = ArtifactStore(tmp_path / "artifacts")
        journal = artifacts.directory / "service" / "pending_runs.json"
        journal.parent.mkdir(parents=True)
        journal.write_text("{torn mid-write")
        report = run_fsck(artifacts.directory)
        assert not report.clean
        assert kinds(report) == ["journal_unreadable"]
        assert run_fsck(artifacts.directory, repair=True).clean
        assert not journal.exists()

    def test_wellformed_journal_is_counted(self, tmp_path):
        artifacts = ArtifactStore(tmp_path / "artifacts")
        journal = artifacts.directory / "service" / "pending_runs.json"
        journal.parent.mkdir(parents=True)
        journal.write_text(
            json.dumps(
                {"version": 1, "runs": [{"run_id": "run-0001",
                                         "class_name": "Song"}]}
            )
        )
        report = run_fsck(artifacts.directory)
        assert report.clean
        assert report.checked["service"]["pending_runs"] == 1


# -- the CLI contract ---------------------------------------------------
class TestCli:
    def test_exit_0_on_clean_store(self, store, capsys):
        assert main(["fsck", "--store", str(store.directory)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_exit_1_on_unrepaired_findings(self, store, capsys):
        corrupt_one_row(store, "content_hash", "0" * 40)
        assert main(["fsck", "--store", str(store.directory)]) == 1
        out = capsys.readouterr().out
        assert "content_hash_mismatch" in out
        assert "NOT clean" in out

    def test_exit_0_after_repair(self, store, capsys):
        corrupt_one_row(store, "content_hash", "0" * 40)
        assert main(
            ["fsck", "--store", str(store.directory), "--repair"]
        ) == 0
        out = capsys.readouterr().out
        assert "[repaired]" in out

    def test_exit_2_without_a_store(self, tmp_path, capsys):
        assert main(["fsck", "--store", str(tmp_path / "nowhere")]) == 2
        assert "error:" in capsys.readouterr().out

    def test_json_and_report_file(self, store, tmp_path, capsys):
        corrupt_one_row(store, "payload", "junk")
        output = tmp_path / "report.json"
        code = main(
            ["fsck", "--store", str(store.directory), "--json",
             "--output", str(output)]
        )
        assert code == 1
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(output.read_text(encoding="utf-8"))
        assert printed == written
        assert written["clean"] is False
        assert written["summary"]["errors"] == 1
        assert written["findings"][0]["kind"] == "payload_undecodable"
