"""Unit and property tests for the data type system."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.datatypes import (
    DataType,
    DateValue,
    NormalizationError,
    candidate_property_types,
    detect_cell_type,
    detect_column_type,
    normalize_value,
    value_similarity,
    values_equal,
)
from repro.datatypes.normalization import (
    parse_date,
    parse_nominal_integer,
    parse_quantity,
)


class TestDateValue:
    def test_year_granularity(self):
        date = DateValue(1987)
        assert not date.is_day_granular
        assert str(date) == "1987"

    def test_day_granularity(self):
        date = DateValue(1987, 3, 14)
        assert date.is_day_granular
        assert str(date) == "1987-03-14"

    def test_partial_date_rejected(self):
        with pytest.raises(ValueError):
            DateValue(1987, 3, None)

    def test_month_out_of_range(self):
        with pytest.raises(ValueError):
            DateValue(1987, 13, 1)

    def test_ordinal_ordering(self):
        assert DateValue(1987).ordinal() < DateValue(1987, 6, 15).ordinal()
        assert DateValue(1987, 6, 15).ordinal() < DateValue(1988).ordinal()


class TestDateParsing:
    @pytest.mark.parametrize(
        "raw",
        ["1987-03-14", "3/14/1987", "March 14, 1987", "14 March 1987"],
    )
    def test_formats_agree(self, raw):
        assert parse_date(raw) == DateValue(1987, 3, 14)

    def test_bare_year(self):
        assert parse_date("1987") == DateValue(1987)

    def test_garbage_raises(self):
        with pytest.raises(NormalizationError):
            parse_date("not a date")


class TestQuantityParsing:
    def test_plain_number(self):
        assert parse_quantity("42") == 42.0

    def test_thousands_separators(self):
        assert parse_quantity("1,234,567") == 1234567.0

    def test_runtime_minutes_seconds(self):
        assert parse_quantity("3:45") == 225.0

    def test_runtime_hours(self):
        assert parse_quantity("1:02:03") == 3723.0

    def test_feet_inches_to_meters(self):
        assert parse_quantity("6'2\"") == pytest.approx(1.8796, abs=1e-3)

    def test_pounds_to_kilograms(self):
        assert parse_quantity("220 lbs") == pytest.approx(99.79, abs=0.01)

    def test_garbage_raises(self):
        with pytest.raises(NormalizationError):
            parse_quantity("tall")


class TestNominalInteger:
    def test_plain(self):
        assert parse_nominal_integer("12") == 12

    def test_hash_prefix(self):
        assert parse_nominal_integer("#12") == 12

    def test_ordinal_suffix(self):
        assert parse_nominal_integer("3rd") == 3

    def test_garbage_raises(self):
        with pytest.raises(NormalizationError):
            parse_nominal_integer("twelve")


class TestNormalizeValue:
    def test_empty_text_raises(self):
        with pytest.raises(NormalizationError):
            normalize_value("   ", DataType.TEXT)

    def test_nominal_string_normalized(self):
        assert normalize_value("  DE ", DataType.NOMINAL_STRING) == "de"

    def test_instance_reference_keeps_case(self):
        assert normalize_value("Green Bay Packers", DataType.INSTANCE_REFERENCE) == (
            "Green Bay Packers"
        )


class TestDetection:
    def test_date_cell(self):
        assert detect_cell_type("March 14, 1987") is DataType.DATE

    def test_quantity_cell(self):
        assert detect_cell_type("1,234") is DataType.QUANTITY

    def test_text_cell(self):
        assert detect_cell_type("Green Bay") is DataType.TEXT

    def test_empty_cell(self):
        assert detect_cell_type("") is None
        assert detect_cell_type(None) is None

    def test_column_majority(self):
        cells = ["Green Bay", "Chicago", "1987", "Dallas"]
        assert detect_column_type(cells) is DataType.TEXT

    def test_bare_years_with_quantities_vote_quantity(self):
        cells = ["1987", "2001", "153", "87", "412"]
        assert detect_column_type(cells) is DataType.QUANTITY

    def test_pure_year_column_is_date(self):
        assert detect_column_type(["1987", "1990", "2001"]) is DataType.DATE

    def test_empty_column_defaults_to_text(self):
        assert detect_column_type([None, None]) is DataType.TEXT


class TestCandidateTypes:
    def test_text_candidates(self):
        assert candidate_property_types(DataType.TEXT) == frozenset(
            {DataType.INSTANCE_REFERENCE, DataType.NOMINAL_STRING, DataType.TEXT}
        )

    def test_quantity_candidates(self):
        assert candidate_property_types(DataType.QUANTITY) == frozenset(
            {DataType.QUANTITY, DataType.NOMINAL_INTEGER}
        )

    def test_date_candidates_include_quantity(self):
        assert DataType.QUANTITY in candidate_property_types(DataType.DATE)

    def test_undetectable_type_rejected(self):
        with pytest.raises(ValueError):
            candidate_property_types(DataType.INSTANCE_REFERENCE)


class TestSimilarity:
    def test_quantity_within_tolerance(self):
        assert values_equal(DataType.QUANTITY, 100.0, 104.0)

    def test_quantity_outside_tolerance(self):
        assert not values_equal(DataType.QUANTITY, 100.0, 120.0)

    def test_date_year_matches_full_date(self):
        assert values_equal(DataType.DATE, DateValue(1987), DateValue(1987, 3, 14))

    def test_date_different_days_unequal(self):
        assert not values_equal(
            DataType.DATE, DateValue(1987, 3, 14), DateValue(1987, 3, 15)
        )

    def test_nominal_string_exact_only(self):
        assert values_equal(DataType.NOMINAL_STRING, "Quarterback", "quarterback")
        assert not values_equal(DataType.NOMINAL_STRING, "Quarterback", "QB")

    def test_text_fuzzy(self):
        assert values_equal(DataType.TEXT, "John Smith", "Jon Smith")

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_quantity_self_similarity(self, value):
        assert value_similarity(DataType.QUANTITY, value, value) == 1.0

    @given(
        st.floats(min_value=0.1, max_value=1e6),
        st.floats(min_value=0.1, max_value=1e6),
    )
    def test_quantity_similarity_symmetric_and_bounded(self, a, b):
        score = value_similarity(DataType.QUANTITY, a, b)
        assert 0.0 <= score <= 1.0
        assert score == value_similarity(DataType.QUANTITY, b, a)
