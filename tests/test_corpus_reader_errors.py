"""Corpus reader error paths: descriptive exceptions, not raw parse errors.

Real web-table dumps are dirty — truncated downloads, half-written
lines, mistyped paths.  Every reader must turn those into a
:class:`ValueError` that names the file (and line, where there is one)
and the defect, so a bad record in a multi-gigabyte corpus is locatable
without bisection.
"""

from __future__ import annotations

import json

import pytest

from repro.corpus.readers import (
    iter_csv_directory,
    iter_jsonl,
    iter_wdc,
    open_table_stream,
    table_from_record,
)


class TestJsonlErrors:
    def test_invalid_json_names_file_and_line(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            '{"table_id": "t1", "header": ["a"], "rows": [["1"]]}\n'
            "{not json at all\n",
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match=r"corpus\.jsonl:2: invalid JSON"):
            list(iter_jsonl(path))

    def test_missing_fields_name_record_and_line(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            '{"table_id": "t1", "header": ["a"], "rows": [["1"]]}\n'
            '{"table_id": "t2", "header": ["a"]}\n',
            encoding="utf-8",
        )
        with pytest.raises(
            ValueError, match=r"corpus\.jsonl:2: .*'t2'.*rows"
        ):
            list(iter_jsonl(path))

    def test_missing_table_id_names_line(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            '{"header": ["a"], "rows": []}\n', encoding="utf-8"
        )
        with pytest.raises(
            ValueError, match=r"corpus\.jsonl:1: .*no table_id"
        ):
            list(iter_jsonl(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text('["not", "an", "object"]\n', encoding="utf-8")
        with pytest.raises(
            ValueError, match=r"corpus\.jsonl:1: .*JSON object.*list"
        ):
            list(iter_jsonl(path))

    def test_error_is_lazy_good_prefix_still_streams(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            '{"table_id": "ok", "header": ["a"], "rows": [["1"]]}\n'
            "garbage\n",
            encoding="utf-8",
        )
        stream = iter_jsonl(path)
        assert next(stream).table_id == "ok"
        with pytest.raises(ValueError, match=":2:"):
            next(stream)


class TestRecordErrors:
    def test_record_must_be_mapping(self):
        with pytest.raises(ValueError, match="JSON object"):
            table_from_record(["nope"])  # type: ignore[arg-type]

    def test_missing_fields_enumerated(self):
        with pytest.raises(ValueError, match="header, rows"):
            table_from_record({"table_id": "t"})


class TestCsvDirectoryErrors:
    def test_not_a_directory(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            list(iter_csv_directory(tmp_path / "missing"))

    def test_directory_without_tables_rejected(self, tmp_path):
        (tmp_path / "readme.txt").write_text("no tables", encoding="utf-8")
        with pytest.raises(ValueError, match=r"no \*\.csv tables"):
            list(iter_csv_directory(tmp_path))

    def test_empty_files_skipped_but_counted_as_present(self, tmp_path):
        (tmp_path / "empty.csv").write_text("", encoding="utf-8")
        # A present-but-empty file is a skip, not a configuration error.
        assert list(iter_csv_directory(tmp_path)) == []


class TestWdcErrors:
    def test_truncated_file_in_directory(self, tmp_path):
        good = {"relation": [["name", "x"]], "hasHeader": True}
        (tmp_path / "a.json").write_text(json.dumps(good), encoding="utf-8")
        (tmp_path / "b.json").write_text(
            json.dumps(good)[:-7], encoding="utf-8"
        )
        with pytest.raises(
            ValueError, match=r"b\.json: invalid or truncated WDC JSON"
        ):
            list(iter_wdc(tmp_path))

    def test_truncated_line_in_dump(self, tmp_path):
        good = {"relation": [["name", "x"]], "hasHeader": True}
        path = tmp_path / "dump.json"
        path.write_text(
            json.dumps(good) + "\n" + json.dumps(good)[:-3] + "\n",
            encoding="utf-8",
        )
        with pytest.raises(
            ValueError, match=r"dump\.json:2: invalid or truncated WDC JSON"
        ):
            list(iter_wdc(path))

    def test_directory_without_tables_rejected(self, tmp_path):
        (tmp_path / "notes.md").write_text("x", encoding="utf-8")
        with pytest.raises(ValueError, match=r"no \*\.json tables"):
            list(iter_wdc(tmp_path))


class TestStreamEntryPoint:
    def test_open_table_stream_propagates_context(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text("{broken\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"corpus\.jsonl:1"):
            list(open_table_stream(path))
