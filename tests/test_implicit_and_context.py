"""Tests for implicit table attributes and the row metric context."""

from __future__ import annotations

import pytest

from repro.clustering.context import RowMetricContext, make_row_metrics
from repro.clustering.implicit import (
    ImplicitAttributeDeriver,
    value_key,
)
from repro.clustering.metrics import ImplicitAttMetric, ROW_METRIC_NAMES
from repro.datatypes import DataType, DateValue
from repro.kb import KBClass, KBInstance, KBProperty, KBSchema, KnowledgeBase
from repro.matching.records import RowRecord
from repro.text.vectors import term_vector


def implicit_kb() -> KnowledgeBase:
    schema = KBSchema()
    schema.add_class(KBClass("Thing"))
    schema.add_class(
        KBClass(
            "Player",
            parent="Thing",
            properties={
                "team": KBProperty("team", DataType.INSTANCE_REFERENCE),
                "draftYear": KBProperty("draftYear", DataType.DATE),
                "height": KBProperty("height", DataType.QUANTITY),
            },
        )
    )
    kb = KnowledgeBase(schema)
    # Three Packers players drafted in 2010 — a themed table's implicit
    # attributes should surface (team=packers, draftYear=2010).
    for index, name in enumerate(("Alpha Adams", "Beta Brown", "Gamma Green")):
        kb.add_instance(
            KBInstance(
                f"kb:{index}", "Player", (name,),
                facts={
                    "team": "Packers",
                    "draftYear": DateValue(2010),
                    "height": 1.80 + index / 100,
                },
            )
        )
    return kb


def record(table: str, index: int, label: str, values=None) -> RowRecord:
    return RowRecord(
        (table, index), table, label, label.lower(),
        term_vector([label]), values=values or {},
    )


class TestValueKey:
    def test_date_keys_by_year(self):
        assert value_key(DateValue(2010, 4, 22)) == "2010"
        assert value_key(DateValue(2010)) == "2010"

    def test_string_normalized(self):
        assert value_key("Green Bay  Packers!") == "green bay packers"

    def test_int_key(self):
        assert value_key(7) == "7"


class TestImplicitDerivation:
    def test_shared_theme_detected(self):
        kb = implicit_kb()
        deriver = ImplicitAttributeDeriver(kb, "Player", threshold=0.5)
        records = [
            record("t", 0, "Alpha Adams"),
            record("t", 1, "Beta Brown"),
            record("t", 2, "Gamma Green"),
        ]
        implicit = deriver.derive_for_table(records)
        assert implicit["team"].key == "packers"
        assert implicit["draftYear"].key == "2010"
        assert implicit["team"].confidence == 1.0
        # Quantities are never implicit attributes.
        assert "height" not in implicit

    def test_unknown_rows_give_nothing(self):
        kb = implicit_kb()
        deriver = ImplicitAttributeDeriver(kb, "Player")
        implicit = deriver.derive_for_table(
            [record("t", 0, "Zzz Unknown"), record("t", 1, "Qqq Unknown")]
        )
        assert implicit == {}

    def test_threshold_filters_minority_combos(self):
        kb = implicit_kb()
        kb.add_instance(
            KBInstance(
                "kb:other", "Player", ("Delta Davis",),
                facts={"team": "Bears", "draftYear": DateValue(1999)},
            )
        )
        deriver = ImplicitAttributeDeriver(kb, "Player", threshold=0.6)
        records = [
            record("t", 0, "Alpha Adams"),
            record("t", 1, "Beta Brown"),
            record("t", 2, "Delta Davis"),
        ]
        implicit = deriver.derive_for_table(records)
        assert implicit["team"].key == "packers"
        assert implicit["team"].confidence == pytest.approx(2 / 3)


class TestImplicitMetric:
    def test_matching_implicit_attributes_score_high(self):
        kb = implicit_kb()
        deriver = ImplicitAttributeDeriver(kb, "Player")
        table_a = [record("ta", 0, "Alpha Adams"), record("ta", 1, "Beta Brown")]
        table_b = [record("tb", 0, "Beta Brown"), record("tb", 1, "Gamma Green")]
        implicit = {
            "ta": deriver.derive_for_table(table_a),
            "tb": deriver.derive_for_table(table_b),
        }
        metric = ImplicitAttMetric(implicit)
        score, confidence = metric.compute(table_a[0], table_b[0])
        assert score == 1.0
        assert confidence > 0

    def test_explicit_value_comparison(self):
        kb = implicit_kb()
        deriver = ImplicitAttributeDeriver(kb, "Player")
        table_a = [record("ta", 0, "Alpha Adams"), record("ta", 1, "Beta Brown")]
        implicit = {"ta": deriver.derive_for_table(table_a)}
        metric = ImplicitAttMetric(implicit)
        other = record("tb", 0, "Someone", values={"team": "Chicago Bears"})
        score, __ = metric.compute(table_a[0], other)
        assert score < 1.0  # implicit packers vs explicit bears disagree

    def test_no_implicit_attributes_is_none(self):
        metric = ImplicitAttMetric({})
        assert metric.compute(record("x", 0, "A"), record("y", 0, "B")) is None


class TestContext:
    def test_build_and_instantiate_all_metrics(self):
        kb = implicit_kb()
        records = [
            record("t1", 0, "Alpha Adams", {"team": "Packers"}),
            record("t2", 0, "Beta Brown", {"team": "Packers"}),
        ]
        context = RowMetricContext.build(kb, "Player", records)
        metrics = make_row_metrics(ROW_METRIC_NAMES, context)
        assert [metric.name for metric in metrics] == list(ROW_METRIC_NAMES)
        for metric in metrics:
            output = metric.compute(records[0], records[1])
            if output is not None:
                score, confidence = output
                assert 0.0 <= score <= 1.0

    def test_unknown_metric_rejected(self):
        kb = implicit_kb()
        context = RowMetricContext.build(kb, "Player", [])
        with pytest.raises(KeyError):
            make_row_metrics(("NOPE",), context)
