"""The tracing subsystem: spans, event logs, exporters, and threading.

The load-bearing claims under test:

* **byte-neutrality** — a traced run's canonical JSON is byte-identical
  to an untraced one (the observer only reads pipeline state);
* **deterministic merge** — chunk spans recorded inside process-pool
  workers reassemble in input order with stable span ids, and parent
  ids survive the pickle boundary;
* **streaming contract** — ``tail_events`` yields each record exactly
  once, survives partial trailing lines, and terminates only after a
  read pass that ran *after* the producer flipped its terminal state.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import RunSession
from repro.corpus.store import CorpusStore
from repro.obs import (
    EventLog,
    Tracer,
    TracingObserver,
    new_trace_id,
    read_events,
    render_tree,
    span_index,
    tail_events,
    to_chrome_trace,
    trace_summary,
)
from repro.parallel import ProcessExecutor
from repro.serve.service import sanitize_trace_id

CLASS_NAME = "Song"


# -- module-level batch function (picklable for process pools) ----------
def double_batch(chunk: list[int]) -> list[int]:
    return [value * 2 for value in chunk]


# -- Tracer / EventLog mechanics ----------------------------------------
class TestTracer:
    def test_begin_end_schema(self):
        tracer = Tracer(trace_id="tr-test")
        span = tracer.begin("outer", "run", attrs={"class": CLASS_NAME})
        inner = tracer.begin("inner", "stage", parent=span.span_id)
        tracer.end(inner)
        tracer.end(span, {"status": "ok"})
        events = tracer.events()
        assert [e["type"] for e in events] == ["begin", "begin", "end", "end"]
        assert [e["seq"] for e in events] == [1, 2, 3, 4]
        assert all(e["trace"] == "tr-test" for e in events)
        assert events[0]["parent"] is None
        assert events[1]["parent"] == span.span_id
        assert events[2]["dur"] >= 0.0
        assert events[3]["attrs"] == {"status": "ok"}

    def test_span_ids_sequential(self):
        tracer = Tracer()
        ids = [tracer.begin(f"s{i}", "stage").span_id for i in range(3)]
        assert ids == ["s0001", "s0002", "s0003"]
        assert tracer.span("retro", "chunk") == "s0004"

    def test_default_parent_adopts_orphans(self):
        tracer = Tracer()
        tracer.default_parent = "s9999"
        span = tracer.begin("adopted", "run")
        assert span.parent == "s9999"
        explicit = tracer.begin("explicit", "stage", parent=span.span_id)
        assert explicit.parent == span.span_id

    def test_retro_span_keeps_given_timing(self):
        tracer = Tracer()
        tracer.span("chunk:x", "chunk", ts=123.5, dur=0.25)
        [event] = tracer.events()
        assert event["ts"] == 123.5
        assert event["dur"] == 0.25
        assert event["type"] == "span"

    def test_point_has_no_span_id(self):
        tracer = Tracer()
        tracer.point("marker", "incremental", attrs={"n": 1})
        [event] = tracer.events()
        assert event["type"] == "point"
        assert "span" not in event

    def test_log_and_path_conflict(self):
        with pytest.raises(ValueError, match="either log= or path="):
            Tracer(EventLog(), path="/tmp/x.ndjson")

    def test_trace_id_shape(self):
        assert new_trace_id().startswith("tr-")
        assert new_trace_id() != new_trace_id()


class TestEventLogPersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        tracer = Tracer(path=path, trace_id="tr-rt")
        span = tracer.begin("run", "run")
        tracer.point("mark", "note")
        tracer.end(span)
        tracer.close()
        replayed = list(read_events(path))
        assert replayed == tracer.events()

    def test_read_after_seq(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        tracer = Tracer(path=path)
        for index in range(5):
            tracer.point(f"p{index}", "note")
        tracer.close()
        tail = list(read_events(path, after_seq=3))
        assert [event["seq"] for event in tail] == [4, 5]

    def test_partial_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        path.write_text(
            json.dumps({"seq": 1, "type": "point", "name": "a"}) + "\n"
            + '{"seq": 2, "type": "poi'  # torn mid-write
        )
        events = list(read_events(path))
        assert [event["seq"] for event in events] == [1]

    def test_malformed_complete_line_raises(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        path.write_text('{"seq": 1}\nnot json at all\n')
        with pytest.raises(ValueError, match="trace.ndjson:2"):
            list(read_events(path))

    def test_appends_are_flushed_immediately(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        tracer = Tracer(path=path)
        tracer.point("live", "note")
        # Visible to a concurrent reader before close().
        assert [event["name"] for event in read_events(path)] == ["live"]
        tracer.close()


class TestTailEvents:
    def test_follows_live_writes_and_terminates(self, tmp_path):
        path = tmp_path / "live.ndjson"
        finished = threading.Event()

        def producer():
            tracer = Tracer(path=path)
            for index in range(4):
                tracer.point(f"p{index}", "note")
                time.sleep(0.01)
            tracer.close()
            finished.set()  # terminal flip AFTER the log is complete

        thread = threading.Thread(target=producer)
        thread.start()
        seen = [
            record
            for record in tail_events(
                path, poll=0.005, done=finished.is_set, timeout=30.0
            )
            if record is not None
        ]
        thread.join()
        assert [record["seq"] for record in seen] == [1, 2, 3, 4]

    def test_yields_none_on_empty_polls(self, tmp_path):
        path = tmp_path / "missing.ndjson"
        ticks = list(tail_events(path, poll=0.001, timeout=0.02))
        assert ticks and all(tick is None for tick in ticks)

    def test_resumes_after_seq(self, tmp_path):
        path = tmp_path / "live.ndjson"
        tracer = Tracer(path=path)
        for index in range(6):
            tracer.point(f"p{index}", "note")
        tracer.close()
        seen = [
            record
            for record in tail_events(
                path, after_seq=4, done=lambda: True
            )
            if record is not None
        ]
        assert [record["seq"] for record in seen] == [5, 6]


# -- exporters ----------------------------------------------------------
def small_trace() -> Tracer:
    tracer = Tracer(trace_id="tr-small")
    run = tracer.begin("run:Song", "run")
    stage = tracer.begin("cluster", "stage", parent=run.span_id)
    tracer.point("map:score", "executor", parent=stage.span_id)
    tracer.span(
        "chunk:score", "chunk", parent=stage.span_id,
        ts=time.time(), dur=0.1, attrs={"pid": 4242},
    )
    tracer.end(stage, {"kernels": {"calls": 3}})
    tracer.end(run)
    return tracer


class TestExport:
    def test_span_index_merges_begin_end(self):
        spans = span_index(small_trace().events())
        assert len(spans) == 3
        stage = spans["s0002"]
        assert stage["attrs"]["kernels"] == {"calls": 3}
        assert stage["dur"] is not None

    def test_span_index_keeps_open_spans(self):
        tracer = Tracer()
        tracer.begin("crashed", "run")
        [span] = span_index(tracer.events()).values()
        assert "dur" not in span

    def test_render_tree_structure(self):
        tree = render_tree(small_trace().events())
        lines = tree.splitlines()
        assert lines[0].startswith("run:Song (run,")
        assert any("└─" in line or "├─" in line for line in lines)
        assert any("· map:score" in line for line in lines)
        assert any("kernels=" in line and "cluster" in line
                   for line in lines)

    def test_render_tree_open_span_and_empty(self):
        tracer = Tracer()
        tracer.begin("running", "run")
        assert "(run, open)" in render_tree(tracer.events())
        assert render_tree([]) == "(empty trace)"

    def test_chrome_trace_shape(self):
        document = to_chrome_trace(small_trace().events())
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["trace"] == "tr-small"
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 3 and len(instants) == 1
        # Timestamps are microseconds relative to the earliest event.
        assert min(e["ts"] for e in document["traceEvents"]) == 0
        # The worker pid lands as the Chrome thread id.
        chunk = next(e for e in complete if e["name"] == "chunk:score")
        assert chunk["tid"] == 4242

    def test_trace_summary_counts(self):
        summary = trace_summary(small_trace().events())
        assert summary["spans"] == 3
        assert summary["by_kind"]["chunk"] == {"count": 1, "seconds": 0.1}


# -- chunk spans across the process-pool boundary -----------------------
class TestChunkSpanMerge:
    def run_traced_map(self, executor) -> list[dict]:
        tracer = Tracer(trace_id="tr-map")
        observer = TracingObserver(tracer, parent="s7777")
        executor.observers.append(observer)
        try:
            results = executor.map_batches(
                double_batch, list(range(24)),
                chunk_size=4, task_name="double",
            )
        finally:
            executor.observers.remove(observer)
        assert results == [value * 2 for value in range(24)]
        return tracer.events()

    def test_deterministic_merge_under_process_pool(self):
        with ProcessExecutor(3) as executor:
            first = self.run_traced_map(executor)
            second = self.run_traced_map(executor)

        def shape(events):
            return [
                (
                    event["type"],
                    event.get("span"),
                    event["name"],
                    event.get("parent"),
                    event["attrs"].get("chunk_index")
                    if "attrs" in event else None,
                )
                for event in events
            ]

        # Identical inputs → identical ids and ordering, however the
        # six chunks raced across the three workers.
        assert shape(first) == shape(second)
        chunks = [e for e in first if e.get("kind") == "chunk"]
        assert [e["attrs"]["chunk_index"] for e in chunks] == list(range(6))
        assert [e["span"] for e in chunks] == [
            f"s{n:04d}" for n in range(1, 7)
        ]

    def test_parent_ids_survive_pickling(self):
        with ProcessExecutor(2) as executor:
            events = self.run_traced_map(executor)
        chunks = [e for e in events if e.get("kind") == "chunk"]
        assert chunks, "process pool produced no chunk spans"
        # No pipeline/stage span is open, so the observer's parent
        # fallback (the constructor arg) is what crossed the boundary.
        assert all(e["parent"] == "s7777" for e in chunks)
        assert all(e["trace"] == "tr-map" for e in chunks)
        # Real worker pids, recorded in-worker.
        import os

        pids = {e["attrs"]["pid"] for e in chunks}
        assert pids and os.getpid() not in pids


# -- whole-pipeline tracing ---------------------------------------------
class TestTracedRuns:
    def test_traced_run_is_byte_identical(self, tiny_world, tmp_path):
        session = RunSession(world=tiny_world)
        baseline = session.run(CLASS_NAME, use_cache=False)
        path = tmp_path / "run.ndjson"
        traced = session.run(CLASS_NAME, use_cache=False, trace=path)
        assert traced.canonical_json() == baseline.canonical_json()
        events = list(read_events(path))
        assert events == session.last_trace.events()
        kinds = {event.get("kind") for event in events}
        assert {"run", "pipeline", "iteration", "stage"} <= kinds

    def test_trace_hierarchy_and_status(self, tiny_world):
        session = RunSession(world=tiny_world)
        session.run(CLASS_NAME, trace=True)
        events = session.last_trace.events()
        spans = span_index(events)
        run_span = next(
            span for span in spans.values() if span["kind"] == "run"
        )
        assert run_span["attrs"]["status"] == "ok"
        assert run_span["attrs"]["class"] == CLASS_NAME
        pipeline = next(
            span for span in spans.values() if span["kind"] == "pipeline"
        )
        assert pipeline["parent"] == run_span["span"]
        stages = [s for s in spans.values() if s["kind"] == "stage"]
        iteration_ids = {
            s["span"] for s in spans.values() if s["kind"] == "iteration"
        }
        assert stages and all(s["parent"] in iteration_ids for s in stages)
        # At least one stage carries a kernel-counter delta.
        assert any("kernels" in s.get("attrs", {}) for s in stages)

    def test_error_run_closes_span_with_status(self, tiny_world):
        class BoomStage:
            name = "boom"

            def run(self, state):
                raise ValueError("boom")

        session = RunSession(world=tiny_world)
        with pytest.raises(ValueError, match="boom"):
            session.run(
                CLASS_NAME, stages=[BoomStage()], trace=True,
                use_cache=False,
            )
        events = session.last_trace.events()
        run_end = next(
            e for e in events
            if e["type"] == "end" and e["kind"] == "run"
        )
        assert run_end["attrs"]["status"] == "error"
        assert "ValueError" in run_end["attrs"]["error"]

    def test_traced_incremental_stays_byte_identical(
        self, tiny_world, tmp_path
    ):
        store = CorpusStore.create(tmp_path / "store", shards=2)
        store.ingest(list(tiny_world.corpus))
        session = RunSession.from_corpus_store(
            store, knowledge_base=tiny_world.knowledge_base
        )
        full = session.run(CLASS_NAME, use_cache=False)
        traced = session.run_incremental(CLASS_NAME, trace=True)
        assert traced.canonical_json() == full.canonical_json()
        events = session.last_trace.events()
        frontier = [e for e in events if e.get("kind") == "incremental"]
        assert frontier and "dirty_tables" in frontier[0]["attrs"]
        run_end = next(
            e for e in events
            if e["type"] == "end" and e["kind"] == "run"
        )
        assert "stage_hits" in run_end["attrs"]
        # trace=True with an attached store lands next to the artifacts.
        logs = list(
            (session.artifact_store.directory / "traces").glob("*.ndjson")
        )
        assert logs
        store.close()


# -- ingest spans -------------------------------------------------------
class TestIngestTracing:
    @pytest.mark.parametrize("processes", [None, 2])
    def test_shard_spans(self, tiny_world, tmp_path, processes):
        tracer = Tracer()
        store = CorpusStore.create(
            tmp_path / f"store-{processes}", shards=3
        )
        report = store.ingest(
            list(tiny_world.corpus), tracer=tracer, processes=processes
        )
        spans = span_index(tracer.events())
        batch = next(
            span for span in spans.values() if span["kind"] == "ingest"
        )
        assert batch["attrs"]["inserted"] == report.inserted
        shards = [s for s in spans.values() if s["kind"] == "shard"]
        assert [s["name"] for s in shards] == [
            "shard-000", "shard-001", "shard-002"
        ]
        assert all(s["parent"] == batch["span"] for s in shards)
        assert sum(s["attrs"]["tables"] for s in shards) == report.inserted
        store.close()


# -- service helpers ----------------------------------------------------
class TestSanitizeTraceId:
    def test_wellformed_pass_through(self):
        assert sanitize_trace_id("tr-abc123") == "tr-abc123"
        assert sanitize_trace_id("A.b_c-9") == "A.b_c-9"

    @pytest.mark.parametrize("bad", [
        None, "", "-leading-dash", "has space", "x" * 65,
        "évil", "a\nb", "a;b",
    ])
    def test_malformed_regenerated(self, bad):
        produced = sanitize_trace_id(bad)
        assert produced != bad
        assert produced.startswith("tr-")
