"""Shared fixtures: a tiny world + gold standards, built once per session.

The suite honours the parallel-execution environment matrix: setting
``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` flips the *default*
:class:`repro.pipeline.pipeline.PipelineConfig` onto that backend for
every test that doesn't pin one (CI runs the whole suite once with
``REPRO_EXECUTOR=process REPRO_WORKERS=2``).  The executor determinism
contract means all assertions must hold unchanged.
"""

from __future__ import annotations

import pytest

from repro.parallel import default_executor_name, default_worker_count
from repro.synthesis.api import build_gold_standard, build_world
from repro.synthesis.profiles import WorldScale


@pytest.fixture(scope="session", autouse=True)
def _executor_environment():
    """Fail fast (and visibly) on an invalid executor environment."""
    name = default_executor_name()  # raises on invalid REPRO_EXECUTOR
    workers = default_worker_count()  # raises on invalid REPRO_WORKERS
    return name, workers


@pytest.fixture(scope="session")
def tiny_world():
    """A small but complete world (all three classes, distractors, junk)."""
    return build_world(seed=7, scale=WorldScale.tiny())


@pytest.fixture(scope="session")
def song_gold(tiny_world):
    return build_gold_standard(tiny_world, "Song", seed=13)


@pytest.fixture(scope="session")
def player_gold(tiny_world):
    return build_gold_standard(tiny_world, "GridironFootballPlayer", seed=13)


@pytest.fixture(scope="session")
def settlement_gold(tiny_world):
    return build_gold_standard(tiny_world, "Settlement", seed=13)
