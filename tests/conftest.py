"""Shared fixtures: a tiny world + gold standards, built once per session."""

from __future__ import annotations

import pytest

from repro.synthesis.api import build_gold_standard, build_world
from repro.synthesis.profiles import WorldScale


@pytest.fixture(scope="session")
def tiny_world():
    """A small but complete world (all three classes, distractors, junk)."""
    return build_world(seed=7, scale=WorldScale.tiny())


@pytest.fixture(scope="session")
def song_gold(tiny_world):
    return build_gold_standard(tiny_world, "Song", seed=13)


@pytest.fixture(scope="session")
def player_gold(tiny_world):
    return build_gold_standard(tiny_world, "GridironFootballPlayer", seed=13)


@pytest.fixture(scope="session")
def settlement_gold(tiny_world):
    return build_gold_standard(tiny_world, "Settlement", seed=13)
