"""The exact nearest-rank percentile helper (`repro.perf.percentiles`).

Shared by the service's ``GET /metrics`` latency report and
``benchmarks/bench_serve.py`` — the properties here are the contract
both rely on for small samples.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.perf import exact_percentile, percentile_summary

samples_strategy = st.lists(
    st.floats(
        min_value=-1e9, max_value=1e9,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=1,
    max_size=60,
)

q_strategy = st.floats(min_value=0.0, max_value=100.0)


class TestExactPercentile:
    def test_known_small_samples(self):
        assert exact_percentile([1, 2, 3, 4], 50) == 2
        assert exact_percentile([1, 2, 3, 4], 75) == 3
        assert exact_percentile([1, 2, 3, 4], 76) == 4
        assert exact_percentile([4, 3, 2, 1], 100) == 4
        assert exact_percentile([4, 3, 2, 1], 0) == 1
        # p99 of 100 requests is the 99th-slowest, not an interpolation.
        latencies = list(range(1, 101))
        assert exact_percentile(latencies, 99) == 99
        assert exact_percentile(latencies, 99.1) == 100

    def test_singleton_is_every_percentile(self):
        for q in (0, 1, 50, 99, 100):
            assert exact_percentile([7.5], q) == 7.5

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError, match="non-empty"):
            exact_percentile([], 50)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            exact_percentile([1.0], 101)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            exact_percentile([1.0], -0.5)

    @given(samples=samples_strategy, q=q_strategy)
    def test_result_is_a_sample_element(self, samples, q):
        assert exact_percentile(samples, q) in samples

    @given(samples=samples_strategy, q1=q_strategy, q2=q_strategy)
    def test_monotone_in_q(self, samples, q1, q2):
        low, high = sorted((q1, q2))
        assert exact_percentile(samples, low) <= exact_percentile(samples, high)

    @given(samples=samples_strategy, q=q_strategy, seed=st.integers(0, 2**16))
    def test_permutation_invariant(self, samples, q, seed):
        import random

        shuffled = list(samples)
        random.Random(seed).shuffle(shuffled)
        assert exact_percentile(shuffled, q) == exact_percentile(samples, q)

    @given(samples=samples_strategy, q=q_strategy)
    def test_nearest_rank_definition(self, samples, q):
        """At least q% of the sample is <= the reported percentile, and
        the reported value is the smallest element achieving that."""
        value = exact_percentile(samples, q)
        required = max(1, math.ceil(q / 100.0 * len(samples)))
        at_most = sum(1 for sample in samples if sample <= value)
        assert at_most >= required
        smaller = [sample for sample in samples if sample < value]
        if smaller:
            below = max(smaller)
            assert sum(1 for sample in samples if sample <= below) < required

    @given(samples=samples_strategy)
    def test_extremes(self, samples):
        assert exact_percentile(samples, 0) == min(samples)
        assert exact_percentile(samples, 100) == max(samples)


class TestPercentileSummary:
    def test_empty_sample_is_none(self):
        assert percentile_summary([]) is None

    def test_shape_and_values(self):
        summary = percentile_summary([3.0, 1.0, 2.0])
        assert summary == {
            "count": 3,
            "mean": 2.0,
            "min": 1.0,
            "max": 3.0,
            "p50": 2.0,
            "p90": 3.0,
            "p99": 3.0,
        }

    def test_fractional_percentile_label(self):
        summary = percentile_summary([1.0, 2.0], percentiles=(99.9,))
        assert "p99_9" in summary

    @given(samples=samples_strategy)
    def test_consistent_with_exact_percentile(self, samples):
        summary = percentile_summary(samples)
        assert summary["count"] == len(samples)
        assert summary["p50"] == exact_percentile(samples, 50)
        assert summary["p99"] == exact_percentile(samples, 99)
        assert summary["min"] <= summary["p50"] <= summary["p99"] <= summary["max"]
