"""Cross-cutting property tests on pipeline invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.clustering import build_blocks, greedy_correlation_clustering, klj_refine
from repro.clustering.metrics import LabelMetric
from repro.clustering.similarity import RowSimilarity
from repro.datatypes import DataType
from repro.fusion.entity import CandidateValue
from repro.fusion.fuser import fuse_values
from repro.matching.records import RowRecord
from repro.ml.aggregation import StaticWeightedAggregator
from repro.pipeline.ranking import ranked_evaluation
from repro.text.tokenize import tokenize
from repro.text.vectors import term_vector

label_strategy = st.sampled_from(
    ["alpha one", "alpha one", "beta two", "gamma three", "alpha ones", "delta"]
)


def _records(labels: list[str]) -> list[RowRecord]:
    return [
        RowRecord(
            (f"t{i}", 0), f"t{i}", label, label, term_vector([label]),
            label_tokens=tuple(tokenize(label)),
        )
        for i, label in enumerate(labels)
    ]


def _similarity() -> RowSimilarity:
    return RowSimilarity(
        [LabelMetric()], StaticWeightedAggregator({"LABEL": 1.0}, threshold=0.8)
    )


class TestClusteringInvariants:
    @given(st.lists(label_strategy, min_size=1, max_size=14), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_partition_property(self, labels, seed):
        """Greedy + KLj always yields an exact partition of the rows."""
        records = _records(labels)
        similarity = _similarity()
        blocks = build_blocks(records)
        clusters = greedy_correlation_clustering(
            records, similarity, blocks, batch_size=3, seed=seed
        )
        refined = klj_refine(clusters, similarity, blocks)
        rows = sorted(row for cluster in refined for row in cluster.row_ids())
        assert rows == sorted(record.row_id for record in records)

    @given(st.lists(label_strategy, min_size=2, max_size=12), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_klj_never_decreases_fitness(self, labels, seed):
        """KLj only applies operations with positive local gain."""
        records = _records(labels)
        similarity = _similarity()
        blocks = build_blocks(records)
        clusters = greedy_correlation_clustering(
            records, similarity, blocks, batch_size=4, seed=seed
        )

        def fitness(cluster_list):
            total = 0.0
            for cluster in cluster_list:
                members = cluster.members
                for i, a in enumerate(members):
                    for b in members[i + 1:]:
                        total += similarity.score(a, b)
            return total

        before = fitness(clusters)
        refined = klj_refine(clusters, similarity, blocks)
        after = fitness(refined)
        assert after >= before - 1e-9


class TestFusionInvariants:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=500.0),
                st.floats(min_value=0.01, max_value=1.0),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40)
    def test_fused_value_within_candidate_range(self, pairs):
        candidates = [
            CandidateValue(value, score, ("t", i), -1)
            for i, (value, score) in enumerate(pairs)
        ]
        fused = fuse_values(candidates, DataType.QUANTITY)
        values = [value for value, __ in pairs]
        assert min(values) <= fused <= max(values)

    @given(st.floats(min_value=1.0, max_value=500.0), st.integers(1, 8))
    @settings(max_examples=30)
    def test_unanimous_candidates_fuse_to_themselves(self, value, count):
        candidates = [
            CandidateValue(value, 1.0, ("t", i), -1) for i in range(count)
        ]
        assert fuse_values(candidates, DataType.QUANTITY) == value

    @given(
        st.lists(st.sampled_from(["A", "B", "C"]), min_size=1, max_size=10),
        st.integers(0, 1000),
    )
    @settings(max_examples=30)
    def test_majority_fusion_order_invariant(self, values, seed):
        candidates = [
            CandidateValue(value, 1.0, ("t", i), -1)
            for i, value in enumerate(values)
        ]
        shuffled = list(candidates)
        random.Random(seed).shuffle(shuffled)
        first = fuse_values(candidates, DataType.NOMINAL_STRING)
        second = fuse_values(shuffled, DataType.NOMINAL_STRING)
        # Both must be members of the most frequent group.
        from collections import Counter

        top = Counter(values).most_common(1)[0][1]
        assert values.count(first) == top
        assert values.count(second) == top


class TestRankingInvariants:
    @given(
        st.lists(st.booleans(), min_size=1, max_size=40),
        st.integers(1, 40),
    )
    @settings(max_examples=40)
    def test_metrics_bounded(self, relevance_flags, cutoff):
        ranking = [f"e{i}" for i in range(len(relevance_flags))]
        relevance = dict(zip(ranking, relevance_flags))
        scores = ranked_evaluation(ranking, relevance, cutoff=cutoff)
        assert 0.0 <= scores.map_at_cutoff <= 1.0
        assert 0.0 <= scores.precision_at_5 <= 1.0
        assert 0.0 <= scores.precision_at_20 <= 1.0

    @given(st.integers(1, 30))
    @settings(max_examples=20)
    def test_all_relevant_is_perfect(self, size):
        ranking = [f"e{i}" for i in range(size)]
        scores = ranked_evaluation(ranking, {name: True for name in ranking})
        assert scores.map_at_cutoff == 1.0
