"""Tests for the composable stage API and the RunSession service layer."""

from __future__ import annotations

import pytest

import repro
from repro.api import RunSession, config_hash
from repro.newdetect.detector import Classification, DetectionResult
from repro.pipeline.pipeline import LongTailPipeline, PipelineConfig
from repro.pipeline.stages import (
    DEFAULT_STAGE_NAMES,
    STAGES,
    PipelineObserver,
    PipelineStage,
    TimingObserver,
)


def _song_restriction(song_gold) -> dict:
    """The gold-standard restriction the integration tests run under."""
    return {
        "table_ids": list(song_gold.table_ids),
        "row_ids": set(song_gold.annotated_rows()),
        "known_classes": {
            table_id: "Song" for table_id in song_gold.table_ids
        },
    }


@pytest.fixture(scope="module")
def session(tiny_world):
    return RunSession(world=tiny_world)


@pytest.fixture(scope="module")
def session_run(session, song_gold):
    return session.run("Song", **_song_restriction(song_gold))


class StubDetectStage:
    """Replaces ``detect``: classifies every entity as NEW, records calls."""

    name = "detect"
    provides = ("detection",)

    def __init__(self) -> None:
        self.iterations_seen: list[int] = []

    def run(self, state):
        self.iterations_seen.append(state.iteration)
        state.detection = DetectionResult(
            classifications={
                entity.entity_id: Classification.NEW
                for entity in state.entities
            },
            best_scores={entity.entity_id: None for entity in state.entities},
        )
        return state


class CountingObserver(PipelineObserver):
    def __init__(self) -> None:
        self.runs_started = 0
        self.runs_finished = 0
        self.iterations_started = 0
        self.stages_started = 0
        self.stages_finished = 0

    def on_run_started(self, class_name, config):
        self.runs_started += 1

    def on_iteration_started(self, class_name, iteration):
        self.iterations_started += 1

    def on_stage_started(self, class_name, iteration, stage_name):
        self.stages_started += 1

    def on_stage_finished(self, class_name, iteration, stage_name, seconds):
        self.stages_finished += 1

    def on_run_finished(self, result):
        self.runs_finished += 1


class TestFacade:
    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_lazy_table_covers_all_names(self):
        from repro import _LAZY_EXPORTS

        missing = set(repro.__all__) - set(_LAZY_EXPORTS) - {"__version__"}
        assert not missing

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestConfigValidation:
    def test_iterations_must_be_positive(self):
        with pytest.raises(ValueError, match="iterations"):
            PipelineConfig(iterations=0)

    def test_unknown_fusion_scoring_rejected(self):
        with pytest.raises(ValueError, match="fusion_scoring"):
            PipelineConfig(fusion_scoring="majority")

    def test_fusion_scoring_case_insensitive(self):
        assert PipelineConfig(fusion_scoring="KBT").fusion_scoring == "KBT"

    def test_metric_names_copied_to_tuples(self):
        names = ["LABEL", "BOW"]
        config = PipelineConfig(row_metric_names=names)
        names.append("PHI")
        assert config.row_metric_names == ("LABEL", "BOW")

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            PipelineConfig(batch_size=0)

    def test_config_hash_stable_and_sensitive(self):
        assert config_hash(PipelineConfig()) == config_hash(PipelineConfig())
        assert config_hash(PipelineConfig()) != config_hash(
            PipelineConfig(iterations=3)
        )


class TestStageRegistry:
    def test_default_names_registered(self):
        assert set(DEFAULT_STAGE_NAMES) <= set(STAGES.names())

    def test_resolve_default_order(self):
        assert [stage.name for stage in STAGES.resolve()] == list(
            DEFAULT_STAGE_NAMES
        )

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline stage"):
            STAGES.resolve(("schema_match", "bogus"))

    def test_instances_pass_through(self):
        stub = StubDetectStage()
        resolved = STAGES.resolve(("schema_match", stub))
        assert resolved[1] is stub

    def test_builtin_stages_satisfy_protocol(self):
        for stage in STAGES.resolve():
            assert isinstance(stage, PipelineStage)


class TestRunSessionEquivalence:
    def test_matches_legacy_pipeline(
        self, tiny_world, song_gold, session_run
    ):
        legacy = LongTailPipeline.default(tiny_world.knowledge_base).run(
            tiny_world.corpus, "Song", **_song_restriction(song_gold)
        )
        assert session_run.summary() == legacy.summary()
        assert session_run.summary_dict() == legacy.summary_dict()

    def test_summary_dict_shape(self, session_run):
        summary = session_run.summary_dict()
        assert summary["class_name"] == "Song"
        assert summary["iterations"] == 2
        assert (
            summary["new_entities"] + summary["existing_entities"]
            <= summary["entities"]
        )


class TestArtifactCache:
    def test_repeat_run_hits_every_stage(self, session, song_gold, session_run):
        hits_before = session.cache_hits
        again = session.run("Song", **_song_restriction(song_gold))
        expected = len(DEFAULT_STAGE_NAMES) * 2  # stages × iterations
        assert session.cache_hits == hits_before + expected
        assert again.summary() == session_run.summary()

    def test_partial_upstream_stages_reused(self, tiny_world, song_gold):
        fresh = RunSession(world=tiny_world)
        restriction = _song_restriction(song_gold)
        fresh.run("Song", stages=("schema_match", "cluster"), **restriction)
        assert fresh.cache_info() == {"hits": 0, "misses": 4, "entries": 4}
        full = fresh.run("Song", **restriction)
        # Only the iteration-1 prefix is safe to reuse: iteration-2 schema
        # matching depends on detection feedback the partial run never made.
        assert fresh.cache_hits == 2
        assert full.final.entities

    def test_use_cache_false_bypasses(self, session, song_gold):
        info_before = session.cache_info()
        session.run("Song", use_cache=False, **_song_restriction(song_gold))
        assert session.cache_info() == info_before

    def test_config_change_misses(self, session, song_gold):
        hits_before = session.cache_hits
        session.run(
            "Song",
            config=PipelineConfig(iterations=1, seed=99),
            **_song_restriction(song_gold),
        )
        assert session.cache_hits == hits_before

    def test_clear_cache(self, tiny_world):
        fresh = RunSession(world=tiny_world)
        fresh.cache_hits = 3
        fresh._artifacts["k"] = {}
        fresh.clear_cache()
        assert fresh.cache_info() == {"hits": 0, "misses": 0, "entries": 0}


class TestStageSubstitution:
    def test_stub_detect_stage_replaces_builtin(
        self, session, song_gold, session_run
    ):
        # Cache stays on: the default detect stage's artifacts are
        # already cached (session_run), and the stub — despite sharing
        # the "detect" name — must still run and win.
        stub = StubDetectStage()
        result = session.run(
            "Song",
            stages=("schema_match", "cluster", "fuse", stub),
            **_song_restriction(song_gold),
        )
        assert stub.iterations_seen == [1, 2]
        final = result.final
        assert final.entities
        assert all(
            final.detection.classifications[entity.entity_id]
            is Classification.NEW
            for entity in final.entities
        )
        assert len(result.new_entities()) == len(final.entities)
        assert len(session_run.new_entities()) != len(
            session_run.final.entities
        )

    def test_stage_without_provides_is_driven_uncached(self, session):
        class MinimalStage:
            name = "minimal"

            def __init__(self):
                self.calls = 0

            def run(self, state):
                self.calls += 1
                return state

        minimal = MinimalStage()
        session.run("Song", stages=(minimal,))
        session.run("Song", stages=(minimal,))
        assert minimal.calls == 4  # 2 runs × 2 iterations, never cached


class TestObservers:
    def test_hook_invocation_counts(self, session):
        observer = CountingObserver()
        # Stub-only stage list keeps the run cheap; hook counts are the
        # contract under test, not the artifacts.
        stub = StubDetectStage()
        session.run(
            "Song", stages=(stub,), observers=[observer], use_cache=False
        )
        assert observer.runs_started == 1
        assert observer.runs_finished == 1
        assert observer.iterations_started == 2
        assert observer.stages_started == 2
        assert observer.stages_finished == 2

    def test_timing_observer_collects_stages(self, session):
        timer = TimingObserver()
        stub = StubDetectStage()
        session.run("Song", stages=(stub,), observers=[timer], use_cache=False)
        assert set(timer.by_stage()) == {"detect"}
        assert timer.total() >= 0.0
        assert "detect" in timer.report()

    def test_session_level_observers(self, tiny_world):
        observer = CountingObserver()
        with_observer = RunSession(world=tiny_world, observers=[observer])
        stub = StubDetectStage()
        with_observer.run("Song", stages=(stub,))
        assert observer.runs_finished == 1


class TestRunMany:
    def test_batch_runs_share_session(self, session, song_gold):
        stub = StubDetectStage()
        results = session.run_many(
            ["Song", "Settlement"], stages=(stub,), use_cache=False
        )
        assert list(results) == ["Song", "Settlement"]
        assert all(
            result.class_name == class_name
            for class_name, result in results.items()
        )

    def test_duplicate_class_names_run_once(self, session):
        stub = StubDetectStage()
        results = session.run_many(["Song", "Song"], stages=(stub,))
        assert list(results) == ["Song"]
        assert stub.iterations_seen == [1, 2]

    def test_session_requires_world_or_parts(self):
        with pytest.raises(ValueError, match="knowledge_base"):
            RunSession()


class TestFromDirectory:
    def test_session_over_saved_world(self, tiny_world, tmp_path):
        from repro.io import save_world_directory

        directory = save_world_directory(tiny_world, tmp_path / "world")
        loaded = RunSession.from_directory(directory)
        assert len(loaded.knowledge_base) == len(tiny_world.knowledge_base)
        assert len(loaded.corpus) == len(tiny_world.corpus)
