"""Tests for the scalable corpus subsystem (repro.corpus).

Covers the streaming readers, the sharded on-disk store (conflict
policies, sharding, multiprocess ingest, reopening), the lazy
TableCorpus-compatible view, ingest-time filters, the incremental corpus
label index, and the `repro ingest` CLI — plus a hypothesis round-trip
property: ingest → store → reload preserves tables, ids, and row
resolution exactly.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.corpus import (
    CorpusLabelIndex,
    CorpusStore,
    HeaderKeywordFilter,
    ShapeFilter,
    StoredCorpusView,
    SubjectColumnFilter,
    content_hash,
    iter_csv_directory,
    iter_jsonl,
    iter_wdc,
    open_table_stream,
    shard_of,
    sniff_format,
)
from repro.webtables.corpus import TableCorpus
from repro.webtables.table import WebTable


def make_table(number: int, rows: int = 3, url: str | None = None) -> WebTable:
    return WebTable(
        table_id=f"t{number}",
        header=("name", "year"),
        rows=[(f"entity {number} row {row}", str(2000 + row)) for row in range(rows)],
        url=url if url is not None else f"http://example.org/{number}",
    )


# ----------------------------------------------------------------------
# Streaming readers
# ----------------------------------------------------------------------
class TestReaders:
    def test_jsonl_streams_tables(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for number in range(3):
                table = make_table(number)
                handle.write(json.dumps({
                    "table_id": table.table_id,
                    "header": list(table.header),
                    "rows": [list(row) for row in table.rows],
                    "url": table.url,
                }) + "\n")
        tables = list(iter_jsonl(path))
        assert [table.table_id for table in tables] == ["t0", "t1", "t2"]
        assert tables[0].rows[0] == ("entity 0 row 0", "2000")

    def test_jsonl_pads_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.jsonl"
        path.write_text(json.dumps({
            "table_id": "r1",
            "header": ["a", "b", "c"],
            "rows": [["1"], ["1", "2", "3", "4"]],
        }) + "\n", encoding="utf-8")
        (table,) = list(iter_jsonl(path))
        assert table.rows == [("1", None, None), ("1", "2", "3")]

    def test_jsonl_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"table_id": "x"\n', encoding="utf-8")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            list(iter_jsonl(path))

    def test_csv_directory(self, tmp_path):
        (tmp_path / "beta.csv").write_text(
            "name,year\nsong b,2001\n", encoding="utf-8"
        )
        (tmp_path / "alpha.csv").write_text(
            "name,year\nsong a,2000\nsong a2,2002\n", encoding="utf-8"
        )
        (tmp_path / "empty.csv").write_text("", encoding="utf-8")
        tables = list(iter_csv_directory(tmp_path))
        assert [table.table_id for table in tables] == ["alpha", "beta"]
        assert tables[0].n_rows == 2
        assert tables[0].header == ("name", "year")

    def test_wdc_directory_column_major(self, tmp_path):
        record = {
            "relation": [
                ["name", "song x", "song y"],
                ["year", "2000", "2001"],
            ],
            "hasHeader": True,
            "headerRowIndex": 0,
            "url": "http://example.org/wdc",
        }
        (tmp_path / "one.json").write_text(json.dumps(record), encoding="utf-8")
        (table,) = list(iter_wdc(tmp_path))
        assert table.table_id == "one"
        assert table.header == ("name", "year")
        assert table.rows == [("song x", "2000"), ("song y", "2001")]
        assert table.url == "http://example.org/wdc"

    def test_wdc_headerless_synthesizes_header(self, tmp_path):
        record = {"relation": [["a", "b"], ["1", "2"]], "hasHeader": False}
        (tmp_path / "nohead.json").write_text(json.dumps(record), encoding="utf-8")
        (table,) = list(iter_wdc(tmp_path))
        assert table.header == ("col0", "col1")
        assert table.n_rows == 2

    def test_wdc_jsonl_dump(self, tmp_path):
        path = tmp_path / "dump.json"
        lines = [
            json.dumps({"relation": [["name", "x"]], "tableId": "wdc-1"}),
            json.dumps({"relation": []}),  # non-relational: skipped
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        tables = list(iter_wdc(path))
        assert [table.table_id for table in tables] == ["wdc-1"]

    def test_sniffing(self, tmp_path):
        (tmp_path / "x.csv").write_text("a\n1\n", encoding="utf-8")
        assert sniff_format(tmp_path) == "csvdir"
        assert sniff_format(tmp_path / "corpus.jsonl") == "jsonl"
        assert sniff_format(tmp_path / "dump.json") == "wdc"
        with pytest.raises(ValueError, match="cannot sniff"):
            sniff_format(tmp_path / "corpus.parquet")

    def test_open_table_stream_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown corpus format"):
            open_table_stream(tmp_path / "x.jsonl", format="parquet")


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
class TestCorpusStore:
    def test_create_open_roundtrip(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store", shards=3)
        store.ingest([make_table(number) for number in range(10)])
        store.close()
        reopened = CorpusStore.open(tmp_path / "store")
        assert len(reopened) == 10
        assert reopened.n_shards == 3
        assert reopened.get("t7").rows == make_table(7).rows
        assert reopened.table_ids() == [f"t{number}" for number in range(10)]

    def test_open_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="repro ingest"):
            CorpusStore.open(tmp_path / "nowhere")

    def test_create_refuses_overwrite(self, tmp_path):
        CorpusStore.create(tmp_path / "store")
        with pytest.raises(ValueError, match="already exists"):
            CorpusStore.create(tmp_path / "store")

    def test_sharding_is_stable_and_spread(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store", shards=4)
        store.ingest(make_table(number) for number in range(100))
        sizes = store.shard_sizes()
        assert sum(sizes.values()) == 100
        assert all(size > 0 for size in sizes.values())
        for number in (0, 42, 99):
            assert shard_of(f"t{number}", 4) == shard_of(f"t{number}", 4)

    def test_idempotent_reingest(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store", shards=2)
        first = store.ingest([make_table(1), make_table(2)])
        second = store.ingest([make_table(1), make_table(2)])
        assert (first.inserted, second.inserted) == (2, 0)
        assert second.identical == 2
        assert len(store) == 2

    def test_conflict_skip_keeps_stored_version(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store")
        store.ingest([make_table(1, rows=3)])
        report = store.ingest([make_table(1, rows=5)], on_conflict="skip")
        assert report.conflicts == 1
        assert store.get("t1").n_rows == 3

    def test_conflict_replace(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store")
        store.ingest([make_table(1, rows=3)])
        report = store.ingest([make_table(1, rows=5)], on_conflict="replace")
        assert report.replaced == 1
        assert store.get("t1").n_rows == 5

    def test_conflict_error(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store")
        store.ingest([make_table(1, rows=3)])
        with pytest.raises(ValueError, match="conflict"):
            store.ingest([make_table(1, rows=5)], on_conflict="error")

    def test_get_missing_is_descriptive(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store")
        store.ingest([make_table(1)])
        with pytest.raises(KeyError, match="not in corpus store"):
            store.get("absent")

    def test_iteration_order_is_ingest_order(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store", shards=5)
        numbers = [5, 3, 8, 1, 9, 0]
        store.ingest(make_table(number) for number in numbers)
        assert [table.table_id for table in store] == [
            f"t{number}" for number in numbers
        ]
        # Order survives reopening and further batches.
        store.close()
        reopened = CorpusStore.open(tmp_path / "store")
        reopened.ingest([make_table(77)])
        assert reopened.table_ids()[-1] == "t77"
        assert reopened.table_ids()[:6] == [f"t{number}" for number in numbers]

    def test_multiprocess_ingest_matches_sequential(self, tmp_path):
        sequential = CorpusStore.create(tmp_path / "seq", shards=4)
        parallel = CorpusStore.create(tmp_path / "par", shards=4)
        tables = [make_table(number) for number in range(60)]
        sequential.ingest(iter(tables), batch_size=16)
        report = parallel.ingest(iter(tables), batch_size=16, processes=3)
        assert report.inserted == 60
        assert parallel.table_ids() == sequential.table_ids()
        for number in (0, 30, 59):
            assert parallel.get(f"t{number}").rows == sequential.get(
                f"t{number}"
            ).rows

    def test_total_rows_and_row_resolution(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store", shards=2)
        store.ingest([make_table(1, rows=2), make_table(2, rows=4)])
        assert store.total_rows() == 6
        assert store.row(("t2", 3)).cells == ("entity 2 row 3", "2003")

    def test_content_hash_ignores_id_but_not_content(self):
        base = make_table(1)
        same_content = WebTable(
            table_id="other", header=base.header, rows=list(base.rows),
            url=base.url,
        )
        assert content_hash(base) == content_hash(same_content)
        assert content_hash(base) != content_hash(make_table(1, rows=4))

    def test_replace_preserves_ingest_order(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store", shards=3)
        store.ingest([make_table(1), make_table(2), make_table(3)])
        store.ingest([make_table(1, rows=6)], on_conflict="replace")
        assert store.table_ids() == ["t1", "t2", "t3"]
        assert store.get("t1").n_rows == 6

    def test_conflict_error_leaves_all_shards_untouched(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store", shards=4)
        store.ingest([make_table(1)])
        # One genuinely new table plus a conflicting one, in one batch:
        # the error must abort before *any* shard commits.
        with pytest.raises(ValueError, match="conflict"):
            store.ingest(
                [make_table(50), make_table(1, rows=9)], on_conflict="error"
            )
        assert "t50" not in store
        assert store.get("t1").n_rows == 3
        assert len(store) == 1

    def test_skip_counts_within_batch_duplicate_of_rejected_content(
        self, tmp_path
    ):
        store = CorpusStore.create(tmp_path / "store")
        store.ingest([make_table(9, rows=3)])
        report = store.ingest(
            [make_table(9, rows=5), make_table(9, rows=5)],
            on_conflict="skip",
        )
        # Neither copy of the rejected content is stored, so neither may
        # count as "identical".
        assert report.conflicts == 2
        assert report.identical == 0
        assert store.get("t9").n_rows == 3

    def test_reingest_with_index_catches_up(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store", shards=2)
        store.ingest([make_table(number) for number in range(4)])
        # First ingest ran without an index; a later re-ingest with one
        # attached must index the unchanged ("identical") tables.
        index = CorpusLabelIndex()
        report = store.ingest(
            [make_table(number) for number in range(4)], index=index
        )
        assert report.identical == 4
        assert len(index) == 4
        assert index.rows_for("entity 2 row 1") == (("t2", 1),)

    def test_filters_counted_per_name(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store")
        tiny = WebTable("tiny", ("a", "b"), [("1", "2")])
        report = store.ingest(
            [make_table(1), tiny],
            filters=[ShapeFilter(min_rows=2)],
        )
        assert report.inserted == 1
        assert report.filtered == {"shape": 1}
        assert "tiny" not in store


# ----------------------------------------------------------------------
# Lazy view
# ----------------------------------------------------------------------
class TestStoredCorpusView:
    @pytest.fixture()
    def view(self, tmp_path) -> StoredCorpusView:
        store = CorpusStore.create(tmp_path / "store", shards=2)
        store.ingest(make_table(number) for number in range(20))
        return store.as_corpus(cache_size=4)

    def test_is_a_table_corpus(self, view):
        assert isinstance(view, TableCorpus)

    def test_reads_match_store(self, view):
        assert len(view) == 20
        assert view.total_rows() == 60
        assert "t3" in view
        assert view.get("t3").table_id == "t3"
        assert view.row(("t4", 1)).cells[0] == "entity 4 row 1"
        assert view.table_ids() == [f"t{number}" for number in range(20)]
        assert next(iter(view)).table_id == "t0"

    def test_cache_is_bounded_lru(self, view):
        for number in range(20):
            view.get(f"t{number}")
        info = view.cache_info()
        assert info["size"] == 4
        assert info["misses"] == 20
        view.get("t19")
        assert view.cache_info()["hits"] == 1

    def test_missing_table_raises_keyerror(self, view):
        with pytest.raises(KeyError, match="not in corpus store"):
            view.get("absent")

    def test_write_through_add(self, view):
        view.add(make_table(100))
        assert "t100" in view.store
        with pytest.raises(ValueError, match="duplicate table id"):
            view.add(make_table(100, rows=5))
        # Same strictness as TableCorpus.add: identical re-add raises too.
        with pytest.raises(ValueError, match="duplicate table id"):
            view.add(make_table(100))


# ----------------------------------------------------------------------
# Filters
# ----------------------------------------------------------------------
class TestFilters:
    def test_shape_filter(self):
        assert ShapeFilter(min_rows=2).accept(make_table(1))
        assert not ShapeFilter(min_rows=4).accept(make_table(1))
        assert not ShapeFilter(max_columns=1).accept(make_table(1))

    def test_subject_column_filter(self):
        assert SubjectColumnFilter().accept(make_table(1))
        numeric_only = WebTable(
            "numbers", ("a", "b"), [("1", "2"), ("3", "4"), ("5", "6")]
        )
        assert not SubjectColumnFilter().accept(numeric_only)
        repeated = WebTable(
            "same", ("name", "n"), [("dup", "1"), ("dup", "2"), ("dup", "3")]
        )
        assert not SubjectColumnFilter(min_unique_labels=2).accept(repeated)

    def test_header_keyword_filter(self):
        keyword_filter = HeaderKeywordFilter(keywords=("Year",))
        assert keyword_filter.accept(make_table(1))
        assert not keyword_filter.accept(
            WebTable("w", ("foo", "bar"), [("a", "b")])
        )

    def test_analysis_is_computed_once_and_shared(self, monkeypatch):
        import repro.corpus.filters as filters_module

        calls = {"count": 0}
        real_detect = filters_module.detect_column_type

        def counting_detect(cells):
            calls["count"] += 1
            return real_detect(cells)

        monkeypatch.setattr(
            filters_module, "detect_column_type", counting_detect
        )
        from repro.corpus import TableAnalysis
        from repro.corpus.filters import passes
        from repro.corpus.indexing import table_label_entries

        table = make_table(1)
        analysis = TableAnalysis(table)
        # Two analysis-using filters plus label indexing share one pass
        # of column typing (one call per column).
        assert passes(table, [SubjectColumnFilter(), SubjectColumnFilter()],
                      analysis) is None
        assert table_label_entries(table, analysis)
        assert calls["count"] == table.n_columns

    def test_class_restriction_filter_against_seed_kb(self, tiny_world):
        from repro.corpus import ClassRestrictionFilter

        corpus_filter = ClassRestrictionFilter(
            tiny_world.knowledge_base, ("Song",)
        )
        decisions = [
            corpus_filter.accept(table) for table in tiny_world.corpus
        ]
        assert any(decisions)
        assert not all(decisions)


# ----------------------------------------------------------------------
# Incremental corpus label index
# ----------------------------------------------------------------------
class TestCorpusLabelIndex:
    def test_incremental_equals_rebuilt(self):
        tables = [make_table(number) for number in range(8)]
        incremental = CorpusLabelIndex()
        for table in tables[:5]:
            incremental.add_table(table)
        for table in tables[5:]:
            incremental.add_table(table)
        rebuilt = CorpusLabelIndex.build(tables)
        assert incremental.n_labels() == rebuilt.n_labels()
        query = "entity 3 row 1"
        assert [match.label for match in incremental.search(query)] == [
            match.label for match in rebuilt.search(query)
        ]

    def test_add_is_idempotent_and_replaces_changed_content(self):
        index = CorpusLabelIndex()
        index.add_table(make_table(1, rows=2))
        labels_before = index.n_labels()
        index.add_table(make_table(1, rows=2))
        assert index.n_labels() == labels_before
        index.add_table(make_table(1, rows=4))
        assert index.rows_for("entity 1 row 3") == (("t1", 3),)

    def test_remove_table_withdraws_postings(self):
        index = CorpusLabelIndex()
        index.add_table(make_table(1))
        index.add_table(make_table(2))
        index.remove_table("t1")
        assert "t1" not in index
        assert index.rows_for("entity 1 row 0") == ()
        assert index.rows_for("entity 2 row 0") == (("t2", 0),)
        with pytest.raises(KeyError):
            index.remove_table("t1")

    def test_persistence_roundtrip(self, tmp_path):
        index = CorpusLabelIndex(fuzzy=False)
        for number in range(4):
            index.add_table(make_table(number))
        path = tmp_path / "index.json"
        index.save(path)
        loaded = CorpusLabelIndex.load(path)
        assert len(loaded) == 4
        assert loaded.n_labels() == index.n_labels()
        assert loaded.rows_for("entity 2 row 1") == (("t2", 1),)

    def test_store_ingest_keeps_index_in_sync(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store", shards=2)
        index = CorpusLabelIndex()
        store.ingest([make_table(number) for number in range(6)], index=index)
        assert len(index) == 6
        # A replacement updates postings instead of duplicating them.
        store.ingest(
            [make_table(2, rows=5)], on_conflict="replace", index=index
        )
        assert index.rows_for("entity 2 row 4") == (("t2", 4),)
        rebuilt = CorpusLabelIndex.build(iter(store))
        assert rebuilt.n_labels() == index.n_labels()

    def test_for_store_and_save_to_store(self, tmp_path):
        store = CorpusStore.create(tmp_path / "store")
        fresh = CorpusLabelIndex.for_store(store)
        assert len(fresh) == 0
        store.ingest([make_table(1)], index=fresh)
        fresh.save_to_store(store)
        again = CorpusLabelIndex.for_store(store)
        assert len(again) == 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestIngestCli:
    def _write_jsonl(self, path, count=5):
        with open(path, "w", encoding="utf-8") as handle:
            for number in range(count):
                table = make_table(number)
                handle.write(json.dumps({
                    "table_id": table.table_id,
                    "header": list(table.header),
                    "rows": [list(row) for row in table.rows],
                    "url": table.url,
                }) + "\n")

    def test_ingest_command(self, tmp_path, capsys):
        source = tmp_path / "corpus.jsonl"
        self._write_jsonl(source)
        code = cli_main([
            "ingest", str(source), "--store", str(tmp_path / "store"),
            "--shards", "2", "--index",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "5 inserted" in output
        assert "label index" in output
        store = CorpusStore.open(tmp_path / "store")
        assert len(store) == 5
        assert (tmp_path / "store" / "label_index.json").exists()

    def test_ingest_json_report_and_reingest(self, tmp_path, capsys):
        source = tmp_path / "corpus.jsonl"
        self._write_jsonl(source)
        store_dir = str(tmp_path / "store")
        assert cli_main(["ingest", str(source), "--store", store_dir]) == 0
        capsys.readouterr()
        assert cli_main(
            ["ingest", str(source), "--store", store_dir, "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["tables"] == 5
        assert document["report"]["identical"] == 5
        assert document["report"]["inserted"] == 0

    def test_ingest_classes_without_kb_errors(self, tmp_path, capsys):
        source = tmp_path / "corpus.jsonl"
        self._write_jsonl(source)
        code = cli_main([
            "ingest", str(source), "--store", str(tmp_path / "store"),
            "--classes", "Song",
        ])
        assert code == 2
        assert "--kb" in capsys.readouterr().out

    def test_ingest_bad_input_errors(self, tmp_path, capsys):
        code = cli_main([
            "ingest", str(tmp_path / "missing.parquet"),
            "--store", str(tmp_path / "store"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Round-trip property: ingest → store → reload
# ----------------------------------------------------------------------
_cell = st.one_of(st.none(), st.text(max_size=8))
_table_strategy = st.builds(
    lambda number, width, rows: WebTable(
        table_id=f"p{number}",
        header=tuple(f"col{position}" for position in range(width)),
        rows=[tuple(row[:width]) for row in rows],
        url=f"http://property.example/{number}",
    ),
    number=st.integers(min_value=0, max_value=9999),
    width=st.integers(min_value=1, max_value=4),
    rows=st.lists(
        st.lists(_cell, min_size=4, max_size=4), min_size=0, max_size=5
    ),
)


class TestRoundTripProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(tables=st.lists(_table_strategy, min_size=1, max_size=10))
    def test_ingest_store_reload_is_lossless(self, tmp_path, tables):
        unique: dict[str, WebTable] = {}
        for table in tables:
            unique.setdefault(table.table_id, table)
        tables = list(unique.values())
        directory = tmp_path / f"store-{len(list(tmp_path.iterdir()))}"
        store = CorpusStore.create(directory, shards=3)
        store.ingest(iter(tables), batch_size=3)
        store.close()

        reloaded = CorpusStore.open(directory)
        assert reloaded.table_ids() == [table.table_id for table in tables]
        for table in tables:
            stored = reloaded.get(table.table_id)
            assert stored.table_id == table.table_id
            assert stored.header == table.header
            assert stored.rows == table.rows
            assert stored.url == table.url
            for row_index in range(table.n_rows):
                assert (
                    reloaded.row((table.table_id, row_index)).cells
                    == table.rows[row_index]
                )
        assert reloaded.total_rows() == sum(table.n_rows for table in tables)
        reloaded.close()
