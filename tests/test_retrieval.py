"""The retrieve-then-rerank candidate layer (repro.retrieval).

Three contracts, each with its own suite:

* **Exact mode is the reference** — hypothesis holds
  ``LabelIndex.search`` (exact) identical to ``search_reference`` (the
  kept-verbatim scan) on random vocabularies, including after mutation
  sequences; the per-label norm memo is equality-checked against the
  fresh computation it replaces.
* **Fast mode is gated approximation** — the incremental retriever
  matches a from-scratch rebuild, recall on the deterministic synthetic
  workloads meets the committed floor, and ``candidate_mode='fast'`` is
  refused unless a committed ``BENCH_retrieval.json`` gate passes.
* **The caches don't thrash** — the per-index block cache keeps one
  entry per ``(generation, max_similar, candidate_mode)``, so callers
  alternating configurations against a persistent index stop re-paying
  searches (the regression this PR fixes).
"""

from __future__ import annotations

import json
import math
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.blocking import build_blocks
from repro.corpus.indexing import CorpusLabelIndex
from repro.index.label_index import CANDIDATE_MODES, LabelIndex
from repro.kb import KBClass, KBInstance, KBSchema, KnowledgeBase
from repro.matching.records import RowRecord
from repro.perf.counters import kernel_counters, reset_kernel_counters
from repro.pipeline.pipeline import PipelineConfig
from repro.retrieval.gate import (
    ENV_BENCH_PATH,
    ENV_UNGATED,
    ensure_fast_mode_allowed,
)
from repro.retrieval.ngram import char_ngrams
from repro.text.tokenize import normalize_label, tokenize
from repro.text.vectors import term_vector
from repro.webtables.table import WebTable

numpy = pytest.importorskip("numpy")

from repro.retrieval.topk import (  # noqa: E402 - needs numpy present
    HybridTopKRetriever,
    NgramTopKRetriever,
    TokenTopKRetriever,
)

_token = st.text(alphabet="abcdef", min_size=1, max_size=6)
_label = st.lists(_token, min_size=1, max_size=4).map(" ".join)


def _matches(index: LabelIndex, query: str, limit: int, mode=None):
    return [
        (match.label, match.score, match.payloads)
        for match in index.search(query, limit, mode=mode)
    ]


def _reference(index: LabelIndex, query: str, limit: int):
    return [
        (match.label, match.score, match.payloads)
        for match in index.search_reference(query, limit)
    ]


# ---------------------------------------------------------------------------
# Exact mode ≡ the kept-verbatim reference scan
# ---------------------------------------------------------------------------


class TestExactModeEquivalence:
    @given(
        st.lists(_label, min_size=1, max_size=25),
        st.lists(_label, min_size=1, max_size=10),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=150)
    def test_identical_on_random_vocabularies(self, labels, queries, limit):
        index = LabelIndex()
        for position, label in enumerate(labels):
            index.add(label, f"payload-{position}")
        for query in queries:
            assert _matches(index, query, limit) == _reference(
                index, query, limit
            )

    @given(
        st.lists(_label, min_size=2, max_size=15),
        st.lists(st.integers(min_value=0, max_value=14), max_size=6),
        st.lists(_label, min_size=1, max_size=6),
    )
    @settings(max_examples=100)
    def test_identical_after_mutations(self, labels, removals, queries):
        """The norm memo survives add/remove without going stale."""
        index = LabelIndex()
        live = {}
        for position, label in enumerate(labels):
            index.add(label, position)
            live.setdefault(normalize_label(label), []).append(position)
        # Interleave queries so the memo is warm before each removal.
        for position in removals:
            assert _matches(index, "query probe", 5) == _reference(
                index, "query probe", 5
            )
            normalized = normalize_label(labels[position % len(labels)])
            if normalized in live and live[normalized]:
                index.remove(normalized, live[normalized].pop())
                if not live[normalized]:
                    del live[normalized]
        for query in queries:
            assert _matches(index, query, 5) == _reference(index, query, 5)

    def test_norm_memo_matches_fresh_computation(self):
        index = LabelIndex()
        for label in ("green day", "green days", "oasis band", "green oasis"):
            index.add(label, label)
        index.search("green", 10)  # warm the memo
        for label in index.labels():
            memoized = index._label_norm(label)
            fresh = math.sqrt(
                sum(
                    index._index.idf(token) ** 2
                    for token in sorted(index._index.tokens_of(label))
                )
            )
            assert memoized == fresh

    def test_norm_memo_hits_and_invalidation_counters(self):
        index = LabelIndex()
        for label in ("green day", "green days", "oasis"):
            index.add(label, label)
        reset_kernel_counters()
        index.search("green day", 10)
        computed = kernel_counters().get("label_index.norm_computed", 0)
        assert computed > 0
        index.search("green day", 10)
        after = kernel_counters()
        assert after.get("label_index.norm_computed", 0) == computed
        assert after.get("label_index.norm_memo_hits", 0) > 0
        index.add("new label", "p")  # mutation drops the memo
        index.search("green day", 10)
        assert kernel_counters()["label_index.norm_computed"] > computed


# ---------------------------------------------------------------------------
# The recall stage (incremental maintenance, determinism)
# ---------------------------------------------------------------------------


class TestTopKRetriever:
    def test_needs_numpy_error_is_descriptive(self, monkeypatch):
        import repro.retrieval.topk as topk_module

        monkeypatch.setattr(topk_module, "_np", None)
        with pytest.raises(RuntimeError, match="candidate_mode='exact'"):
            NgramTopKRetriever()
        assert not topk_module.numpy_available()

    def test_char_ngrams_padding_and_short_strings(self):
        grams = char_ngrams("ab")
        assert grams == {" ab": 1, "ab ": 1}
        assert char_ngrams("") == {}
        assert sum(char_ngrams("abc").values()) == len(" abc ") - 2

    @pytest.mark.parametrize(
        "retriever_class", [NgramTopKRetriever, TokenTopKRetriever]
    )
    def test_remove_unknown_label_raises(self, retriever_class):
        retriever = retriever_class()
        retriever.add_label("green day")
        with pytest.raises(KeyError):
            retriever.remove_label("oasis")

    @given(
        st.lists(
            st.tuples(st.sampled_from(["add", "remove"]), _label),
            min_size=1,
            max_size=40,
        ),
        _label,
    )
    @settings(max_examples=100)
    def test_incremental_equals_rebuilt(self, operations, query):
        """add/remove sequences match a from-scratch build on the
        surviving labels — full ranking, scores to float tolerance
        (accumulation order may differ across posting layouts)."""
        incremental = NgramTopKRetriever()
        live: list[str] = []
        for operation, label in operations:
            if operation == "add":
                incremental.add_label(label)
                if label and label not in live:
                    live.append(label)
            elif label in live:
                incremental.remove_label(label)
                live.remove(label)
        fresh = NgramTopKRetriever()
        for label in live:
            fresh.add_label(label)
        assert len(incremental) == len(fresh) == len(live)
        assert sorted(incremental.labels()) == sorted(fresh.labels())
        incremental_ranking = incremental.top_k(query, len(live) + 1)
        fresh_ranking = fresh.top_k(query, len(live) + 1)
        assert [label for label, __ in incremental_ranking] == [
            label for label, __ in fresh_ranking
        ]
        for (__, a), (__, b) in zip(incremental_ranking, fresh_ranking):
            assert a == pytest.approx(b, abs=1e-9)

    def test_compaction_preserves_content(self):
        retriever = NgramTopKRetriever()
        for number in range(200):
            retriever.add_label(f"label number {number}")
        for number in range(180):
            retriever.remove_label(f"label number {number}")
        # 180 removals but holes stayed bounded — compaction ran.
        assert retriever._holes <= max(64, len(retriever))
        assert len(retriever) == 20
        assert retriever.top_k("label number 190", 1)[0][0] == (
            "label number 190"
        )

    def test_deterministic_tiebreak_by_label(self):
        retriever = NgramTopKRetriever()
        for label in ("zz twin", "aa twin", "mm twin"):
            retriever.add_label(label)
        top = retriever.top_k("twin", 3)
        scores = [score for __, score in top]
        assert scores[0] == pytest.approx(scores[1]) == pytest.approx(scores[2])
        assert [label for label, __ in top] == ["aa twin", "mm twin", "zz twin"]

    def test_hybrid_forwards_membership_and_mutations(self):
        hybrid = HybridTopKRetriever()
        hybrid.add_label("green day")
        assert "green day" in hybrid and len(hybrid) == 1
        generation = hybrid.generation
        hybrid.remove_label("green day")
        assert "green day" not in hybrid and len(hybrid) == 0
        assert hybrid.generation > generation


# ---------------------------------------------------------------------------
# Fast mode: recall + counters + pickling
# ---------------------------------------------------------------------------


def _song_index(n: int = 300) -> LabelIndex:
    index = LabelIndex()
    for number in range(n):
        label = f"song number {number} by artist {number % 9}"
        if number % 7 == 0:
            label = label.replace("number", "numbre")
        index.add(label, number)
    return index


class TestFastMode:
    def test_recall_meets_floor_on_synthetic_workload(self):
        from repro.perf.bench import bench_label_retrieval
        from repro.retrieval.gate import RECALL_FLOOR

        entry = bench_label_retrieval(vocabulary_size=1200, n_queries=60)
        assert entry["recall_at_k"] >= RECALL_FLOOR

    def test_recalled_candidates_score_byte_identical_to_exact(self):
        index = _song_index()
        for query in (
            "song number 42 by artist 6",
            "sonng numbre 14 by artst 0",
            "artist 3",
        ):
            exact_scores = {
                match.label: match.score for match in index.search(query, 20)
            }
            for match in index.search(query, 20, mode="fast"):
                if match.label in exact_scores:
                    assert match.score == exact_scores[match.label]

    def test_fast_mode_bumps_retrieval_counters(self):
        index = _song_index(60)
        reset_kernel_counters()
        index.search("song number 7 by artist 7", 10, mode="fast")
        counters = kernel_counters()
        assert counters.get("retrieval.queries") == 1
        assert counters.get("retrieval.recall_candidates", 0) > 0
        assert counters.get("retrieval.rerank_survivors", 0) > 0
        assert counters.get("retrieval.token_scored", 0) > 0
        assert counters.get("retrieval.ngram_scored", 0) > 0

    def test_mode_validation(self):
        index = LabelIndex()
        index.add("green day", "p")
        with pytest.raises(ValueError, match="unknown candidate_mode"):
            index.search("green", 5, mode="weird")
        with pytest.raises(ValueError, match="unknown candidate_mode"):
            LabelIndex(candidate_mode="weird")
        assert CANDIDATE_MODES == ("exact", "fast")

    def test_default_mode_attribute_drives_search(self):
        index = _song_index(40)
        fast_default = LabelIndex(candidate_mode="fast")
        for label in index.labels():
            fast_default.add(label, label)
        query = "song number 3 by artist 3"
        assert [m.label for m in fast_default.search(query, 5)] == [
            m.label for m in index.search(query, 5, mode="fast")
        ]

    def test_pickle_drops_retriever_and_rebuilds(self):
        index = _song_index(50)
        index.search("song number 3 by artist 3", 5, mode="fast")
        assert index._retriever is not None
        clone = pickle.loads(pickle.dumps(index))
        assert clone._retriever is None
        assert clone._norm_cache == {}
        query = "song number 12 by artist 3"
        assert _matches(clone, query, 5, mode="fast") == _matches(
            index, query, 5, mode="fast"
        )

    def test_retriever_maintained_through_index_mutations(self):
        index = _song_index(40)
        index.search("song", 5, mode="fast")  # builds the recall stage
        index.add("brand new label entirely", "p")
        matches = index.search("brand new label entirely", 3, mode="fast")
        assert matches and matches[0].label == "brand new label entirely"
        index.remove("brand new label entirely", "p")
        matches = index.search("brand new label entirely", 3, mode="fast")
        assert all(
            match.label != "brand new label entirely" for match in matches
        )


# ---------------------------------------------------------------------------
# The admission gate
# ---------------------------------------------------------------------------


def _write_gate_document(path, passed: bool, recall: float = 0.99):
    document = {
        "schema": "repro.bench.retrieval/v1",
        "benchmarks": {},
        "gate": {
            "recall_floor": 0.95,
            "min_speedup": 2.0,
            "recall_at_k": recall,
            "speedup": 3.0,
            "passed": passed,
        },
    }
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


class TestFastModeGate:
    def test_broken_override_names_the_bad_path(self, tmp_path, monkeypatch):
        # A set-but-typo'd REPRO_RETRIEVAL_BENCH must not masquerade as
        # "no committed benchmark": the error names the bad path.
        monkeypatch.delenv(ENV_UNGATED, raising=False)
        missing = tmp_path / "missing.json"
        monkeypatch.setenv(ENV_BENCH_PATH, str(missing))
        with pytest.raises(ValueError, match="nonexistent path") as caught:
            ensure_fast_mode_allowed()
        assert str(missing) in str(caught.value)
        assert ENV_BENCH_PATH in str(caught.value)

    def test_refused_when_gate_failed(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_UNGATED, raising=False)
        document = _write_gate_document(
            tmp_path / "BENCH_retrieval.json", passed=False, recall=0.5
        )
        monkeypatch.setenv(ENV_BENCH_PATH, str(document))
        with pytest.raises(ValueError, match="did not pass"):
            ensure_fast_mode_allowed()

    def test_admitted_by_passing_document(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_UNGATED, raising=False)
        document = _write_gate_document(
            tmp_path / "BENCH_retrieval.json", passed=True
        )
        monkeypatch.setenv(ENV_BENCH_PATH, str(document))
        gate = ensure_fast_mode_allowed()
        assert gate["passed"] is True

    def test_ungated_escape_hatch(self, monkeypatch):
        monkeypatch.setenv(ENV_UNGATED, "1")
        assert ensure_fast_mode_allowed() == {"ungated": True}

    def test_pipeline_config_validates_and_gates(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_UNGATED, raising=False)
        with pytest.raises(ValueError, match="unknown candidate_mode"):
            PipelineConfig(candidate_mode="weird")
        assert PipelineConfig(candidate_mode=" EXACT ").candidate_mode == (
            "exact"
        )
        failing = _write_gate_document(
            tmp_path / "failing.json", passed=False, recall=0.5
        )
        monkeypatch.setenv(ENV_BENCH_PATH, str(failing))
        with pytest.raises(ValueError, match="did not pass"):
            PipelineConfig(candidate_mode="fast")
        passing = _write_gate_document(tmp_path / "passing.json", passed=True)
        monkeypatch.setenv(ENV_BENCH_PATH, str(passing))
        assert PipelineConfig(candidate_mode="fast").candidate_mode == "fast"

    def test_candidate_mode_changes_config_hash(self, monkeypatch):
        from repro.api import config_hash

        monkeypatch.setenv(ENV_UNGATED, "1")
        exact = PipelineConfig(candidate_mode="exact")
        fast = PipelineConfig(candidate_mode="fast")
        assert config_hash(exact) != config_hash(fast)


# ---------------------------------------------------------------------------
# Mode threading through the consumers
# ---------------------------------------------------------------------------


def _record(number: int, label: str) -> RowRecord:
    norm = normalize_label(label)
    return RowRecord(
        row_id=(f"t{number}", 0),
        table_id=f"t{number}",
        label=label,
        norm_label=norm,
        tokens=term_vector([label]),
        values={},
        label_tokens=tuple(tokenize(norm)),
    )


def _label_table(table_id: str, labels) -> WebTable:
    return WebTable(
        table_id=table_id,
        header=("name", "year"),
        rows=[(label, str(2000 + i)) for i, label in enumerate(labels)],
        url=f"http://example.test/{table_id}",
    )


class TestModeThreading:
    def test_kb_search_cache_is_mode_keyed(self):
        schema = KBSchema()
        schema.add_class(KBClass("Thing"))
        kb = KnowledgeBase(schema)
        for number in range(30):
            kb.add_instance(
                KBInstance(
                    f"kb:i{number}", "Thing", (f"entity number {number}",)
                )
            )
        exact = kb.label_matches("entity number 3", 5)
        fast = kb.label_matches("entity number 3", 5, mode="fast")
        keys = set(kb._search_cache)
        assert ("entity number 3", 5, "exact") in keys
        assert ("entity number 3", 5, "fast") in keys
        assert [m.label for m in exact] == [m.label for m in fast]
        assert kb.candidates_by_label("entity number 3", 5, mode="fast")

    def test_corpus_index_forwards_mode(self):
        index = CorpusLabelIndex()
        index.add_table(
            _label_table("t1", [f"entity number {n}" for n in range(25)])
        )
        exact = index.search("entity number 7", 5)
        fast = index.search("entity number 7", 5, mode="fast")
        assert [m.label for m in exact] == [m.label for m in fast]
        assert index.search_reference("entity number 7", 5)

    def test_blocking_fast_mode_matches_exact_on_clean_labels(self):
        index = CorpusLabelIndex()
        index.add_table(
            _label_table("t1", [f"entity number {n}" for n in range(25)])
        )
        records = [_record(n, f"entity number {n}") for n in range(10)]
        exact_blocks = build_blocks(records, 4, index=index)
        fast_blocks = build_blocks(
            records, 4, index=index, candidate_mode="fast"
        )
        assert fast_blocks == exact_blocks

    def test_block_cache_alternating_configurations_do_not_thrash(self):
        """The regression: alternating ``max_similar`` against one
        persistent index must serve the second round from cache."""
        index = CorpusLabelIndex()
        index.add_table(
            _label_table("t1", ["green day", "green days", "green daze"])
        )
        records = [_record(1, "green day"), _record(2, "green days")]
        reset_kernel_counters()
        wide_first = build_blocks(records, max_similar=3, index=index)
        narrow_first = build_blocks(records, max_similar=1, index=index)
        searched = kernel_counters().get("blocking.label_searches", 0)
        assert searched == 4  # two labels per configuration
        wide_second = build_blocks(records, max_similar=3, index=index)
        narrow_second = build_blocks(records, max_similar=1, index=index)
        after = kernel_counters()
        assert after.get("blocking.label_searches", 0) == searched
        assert after.get("blocking.label_cache_hits", 0) == 4
        assert wide_second == wide_first
        assert narrow_second == narrow_first

    def test_block_cache_is_mode_keyed(self):
        index = CorpusLabelIndex()
        index.add_table(
            _label_table("t1", [f"entity number {n}" for n in range(10)])
        )
        records = [_record(1, "entity number 1")]
        reset_kernel_counters()
        build_blocks(records, 3, index=index)
        build_blocks(records, 3, index=index, candidate_mode="fast")
        searched = kernel_counters().get("blocking.label_searches", 0)
        assert searched == 2  # one per mode: distinct cache entries
        build_blocks(records, 3, index=index)
        build_blocks(records, 3, index=index, candidate_mode="fast")
        assert kernel_counters().get("blocking.label_searches", 0) == searched

    def test_mutation_prunes_stale_generation_entries(self):
        from repro.clustering.blocking import _SHARED_LABEL_BLOCKS

        index = CorpusLabelIndex()
        index.add_table(_label_table("t1", ["green day"]))
        records = [_record(1, "green day")]
        build_blocks(records, max_similar=3, index=index)
        build_blocks(records, max_similar=1, index=index)
        assert len(_SHARED_LABEL_BLOCKS[index]) == 2
        index.add_table(_label_table("t2", ["green days"]))
        build_blocks(records, max_similar=3, index=index)
        per_index = _SHARED_LABEL_BLOCKS[index]
        assert len(per_index) == 1
        assert all(key[0] == index.generation for key in per_index)
