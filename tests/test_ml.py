"""Unit and property tests for the ML substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    CombinedAggregator,
    ForestAggregator,
    GeneticWeightLearner,
    MetricVector,
    RandomForestRegressor,
    RegressionTree,
    ShiftedAggregator,
    StaticWeightedAggregator,
    WeightedAverageAggregator,
    stratified_group_folds,
    upsample_balanced,
)
from repro.ml.genetic import f1_score


class TestRegressionTree:
    def test_fits_constant_target(self):
        X = np.random.default_rng(0).random((50, 3))
        y = np.full(50, 2.5)
        tree = RegressionTree().fit(X, y)
        assert np.allclose(tree.predict(X), 2.5)

    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        tree = RegressionTree().fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_max_depth_zero_is_leaf(self):
        X = np.random.default_rng(0).random((30, 2))
        y = X[:, 0]
        tree = RegressionTree(max_depth=0).fit(X, y)
        assert tree.depth() == 0
        assert np.allclose(tree.predict(X), y.mean())

    def test_min_samples_leaf_respected(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        tree = RegressionTree(min_samples_leaf=2).fit(X, y)
        assert tree.depth() == 0

    def test_importances_favor_informative_feature(self):
        rng = np.random.default_rng(1)
        X = rng.random((200, 3))
        y = X[:, 1] * 10
        tree = RegressionTree().fit(X, y)
        assert np.argmax(tree.feature_importances_) == 1

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_one_matches_predict(self):
        rng = np.random.default_rng(2)
        X = rng.random((60, 4))
        y = X @ np.array([1.0, 2.0, 0.0, -1.0])
        tree = RegressionTree().fit(X, y)
        batch = tree.predict(X[:5])
        single = [tree.predict_one(row) for row in X[:5]]
        assert np.allclose(batch, single)


class TestRandomForest:
    def test_reduces_error_vs_noise(self):
        rng = np.random.default_rng(3)
        X = rng.random((300, 4))
        y = X @ np.array([0.5, 0.3, 0.1, 0.1])
        forest = RandomForestRegressor(n_trees=15, seed=0).fit(X, y)
        prediction = forest.predict(X)
        assert np.mean((prediction - y) ** 2) < 0.01

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        X = rng.random((100, 3))
        y = X[:, 0]
        first = RandomForestRegressor(n_trees=8, seed=5).fit(X, y).predict(X)
        second = RandomForestRegressor(n_trees=8, seed=5).fit(X, y).predict(X)
        assert np.array_equal(first, second)

    def test_oob_mse_available(self):
        rng = np.random.default_rng(5)
        X = rng.random((100, 3))
        y = X[:, 0]
        forest = RandomForestRegressor(n_trees=10, seed=1).fit(X, y)
        assert forest.oob_mse_ is not None
        assert forest.oob_mse_ >= 0.0

    def test_importances_normalized(self):
        rng = np.random.default_rng(6)
        X = rng.random((100, 5))
        y = X[:, 2]
        forest = RandomForestRegressor(n_trees=10, seed=2).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_tune_picks_a_fitted_forest(self):
        rng = np.random.default_rng(7)
        X = rng.random((80, 3))
        y = X[:, 0] * 2
        forest = RandomForestRegressor.tune(X, y, n_trees=8, seed=3)
        assert forest.oob_mse_ is not None


class TestGeneticLearner:
    def test_recovers_dominant_metric(self):
        rng = np.random.default_rng(8)
        scores = rng.random((400, 3))
        labels = scores[:, 0] > 0.6
        learner = GeneticWeightLearner(generations=40, seed=1)
        learned = learner.learn(scores, labels)
        assert learned.weights[0] > 0.5
        assert learned.fitness > 0.9

    def test_weights_normalized(self):
        rng = np.random.default_rng(9)
        scores = rng.random((100, 4))
        labels = scores[:, 1] > 0.5
        learned = GeneticWeightLearner(generations=10, seed=2).learn(scores, labels)
        assert learned.weights.sum() == pytest.approx(1.0)
        assert (learned.weights >= 0).all()

    def test_deterministic(self):
        rng = np.random.default_rng(10)
        scores = rng.random((100, 2))
        labels = scores[:, 0] > 0.5
        a = GeneticWeightLearner(generations=10, seed=3).learn(scores, labels)
        b = GeneticWeightLearner(generations=10, seed=3).learn(scores, labels)
        assert np.array_equal(a.weights, b.weights)
        assert a.threshold == b.threshold

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            GeneticWeightLearner().learn(np.zeros((3, 2)), np.zeros(4, dtype=bool))


class TestF1:
    def test_perfect(self):
        actual = np.array([True, False, True])
        assert f1_score(actual, actual) == 1.0

    def test_no_predictions(self):
        assert f1_score(np.zeros(3, dtype=bool), np.ones(3, dtype=bool)) == 0.0

    @given(st.integers(min_value=1, max_value=50), st.integers(0, 2**31))
    def test_bounded(self, size, seed):
        rng = np.random.default_rng(seed)
        predicted = rng.random(size) > 0.5
        actual = rng.random(size) > 0.5
        assert 0.0 <= f1_score(predicted, actual) <= 1.0


def _make_pairs(n=120, seed=0):
    """Synthetic metric vectors where metric 'a' decides the label."""
    rng = np.random.default_rng(seed)
    pairs, labels = [], []
    for __ in range(n):
        a = rng.random()
        b = rng.random()
        pairs.append(MetricVector({"a": (a, 1.0), "b": (b, rng.random())}))
        labels.append(a > 0.5)
    return pairs, labels


class TestAggregators:
    def test_weighted_average_learns_signal(self):
        pairs, labels = _make_pairs()
        aggregator = WeightedAverageAggregator(["a", "b"], seed=0).fit(pairs, labels)
        assert aggregator.metric_importances()["a"] > 0.6

    def test_weighted_average_score_range(self):
        pairs, labels = _make_pairs()
        aggregator = WeightedAverageAggregator(["a", "b"], seed=0).fit(pairs, labels)
        for pair in pairs:
            assert -1.0 <= aggregator.score(pair) <= 1.0

    def test_forest_aggregator_separates(self):
        pairs, labels = _make_pairs(seed=1)
        aggregator = ForestAggregator(["a", "b"], n_trees=10, seed=0).fit(pairs, labels)
        positive = np.mean([aggregator.score(p) for p, l in zip(pairs, labels) if l])
        negative = np.mean(
            [aggregator.score(p) for p, l in zip(pairs, labels) if not l]
        )
        assert positive > negative

    def test_combined_importances_average(self):
        pairs, labels = _make_pairs(seed=2)
        combined = CombinedAggregator(["a", "b"], n_trees=10, seed=0).fit(pairs, labels)
        importances = combined.metric_importances()
        assert set(importances) == {"a", "b"}
        assert sum(importances.values()) == pytest.approx(1.0, abs=1e-6)

    def test_static_aggregator_no_fit_needed(self):
        aggregator = StaticWeightedAggregator({"a": 2.0, "b": 1.0}, threshold=0.5)
        high = aggregator.score(MetricVector({"a": (1.0, 1.0), "b": (1.0, 1.0)}))
        low = aggregator.score(MetricVector({"a": (0.0, 1.0), "b": (0.0, 1.0)}))
        assert high == 1.0
        assert low == -1.0

    def test_shifted_aggregator_moves_boundary(self):
        base = StaticWeightedAggregator({"a": 1.0}, threshold=0.5)
        shifted = ShiftedAggregator(base, 0.4)
        pair = MetricVector({"a": (0.6, 1.0)})
        assert base.score(pair) > 0
        assert shifted.score(pair) < 0

    def test_missing_metric_treated_as_zero(self):
        aggregator = StaticWeightedAggregator({"a": 1.0, "b": 1.0}, threshold=0.5)
        pair = MetricVector({"a": (1.0, 1.0)})  # b missing
        assert aggregator.score(pair) == 0.0


class TestCrossval:
    def test_groups_stay_together(self):
        items = [(f"group{i % 4}", i) for i in range(20)]
        folds = stratified_group_folds(
            items, 3, group_of=lambda item: item[0], stratum_of=lambda item: item[1] % 2
        )
        fold_of_group = {}
        for fold_index, fold in enumerate(folds):
            for group, __ in fold:
                fold_of_group.setdefault(group, set()).add(fold_index)
        assert all(len(folds) == 1 for folds in fold_of_group.values())

    def test_all_items_assigned_once(self):
        items = list(range(30))
        folds = stratified_group_folds(
            items, 3, group_of=lambda item: item, stratum_of=lambda item: item % 2
        )
        combined = sorted(item for fold in folds for item in fold)
        assert combined == items

    def test_strata_roughly_balanced(self):
        items = [(i, i < 10) for i in range(30)]
        folds = stratified_group_folds(
            items, 3, group_of=lambda item: item[0], stratum_of=lambda item: item[1]
        )
        per_fold = [sum(1 for __, is_new in fold if is_new) for fold in folds]
        assert max(per_fold) - min(per_fold) <= 2

    def test_too_few_folds_rejected(self):
        with pytest.raises(ValueError):
            stratified_group_folds([], 1, group_of=id, stratum_of=id)

    def test_upsample_balances(self):
        positives, negatives = upsample_balanced([1, 2], [3, 4, 5, 6, 7], seed=0)
        assert len(positives) == len(negatives) == 5

    def test_upsample_empty_side_passthrough(self):
        positives, negatives = upsample_balanced([], [1, 2], seed=0)
        assert positives == []
        assert negatives == [1, 2]

    @given(
        st.lists(st.integers(), min_size=1, max_size=20),
        st.lists(st.integers(), min_size=1, max_size=20),
        st.integers(0, 1000),
    )
    @settings(max_examples=25)
    def test_upsample_preserves_multiset_superset(self, pos, neg, seed):
        new_pos, new_neg = upsample_balanced(pos, neg, seed=seed)
        assert len(new_pos) == len(new_neg) == max(len(pos), len(neg))
        assert set(new_pos) <= set(pos) | set()
        assert set(new_neg) <= set(neg) | set()
