"""Golden regression: the default pipeline on a committed fixed corpus.

``tests/golden/`` holds a small committed world (corpus + knowledge
base, built once with ``build_world(seed=11, scale=0.08,
classes=["Song"])``) and the canonical JSON the default pipeline
produced on it.  The tests rerun the pipeline and diff byte-for-byte:

* against the committed expectation — any semantic drift in matching,
  clustering, fusion or detection shows up as a diff, not as a silently
  shifted metric;
* across executors — serial, thread and process (workers=2) runs must
  produce identical artifacts (the acceptance criterion of the parallel
  execution engine).

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python -c "
    from pathlib import Path
    from repro.api import RunSession
    session = RunSession.from_directory('tests/golden/world')
    blob = session.run('Song', use_cache=False).canonical_json()
    Path('tests/golden/expected_Song.json').write_text(blob)"

and explain the diff in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import RunSession

GOLDEN_DIR = Path(__file__).parent / "golden"
WORLD_DIR = GOLDEN_DIR / "world"
EXPECTED_FILE = GOLDEN_DIR / "expected_Song.json"


@pytest.fixture(scope="module")
def golden_session():
    return RunSession.from_directory(WORLD_DIR)


@pytest.fixture(scope="module")
def expected_blob() -> str:
    return EXPECTED_FILE.read_text(encoding="utf-8")


def test_fixture_is_committed_and_wellformed(expected_blob):
    assert (WORLD_DIR / "corpus.jsonl").exists()
    assert (WORLD_DIR / "knowledge_base.json").exists()
    document = json.loads(expected_blob)
    assert document["summary"]["class_name"] == "Song"
    assert document["summary"]["entities"] > 0


def test_default_pipeline_matches_golden(golden_session, expected_blob):
    """The serial default pipeline reproduces the committed artifacts."""
    result = golden_session.run("Song", executor="serial", use_cache=False)
    assert result.canonical_json() == expected_blob


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_parallel_runs_byte_identical_to_golden(
    golden_session, expected_blob, executor
):
    """Thread/process runs (workers=2) agree with the golden bytes.

    Equality against the *same committed string* the serial test uses is
    exactly the "serial and parallel runs produce byte-identical
    artifacts" acceptance criterion.
    """
    result = golden_session.run(
        "Song", executor=executor, workers=2, use_cache=False
    )
    assert result.canonical_json() == expected_blob
