"""Golden regression: the default pipeline on committed fixed corpora.

``tests/golden/`` holds two small committed worlds (corpus + knowledge
base) and the canonical JSON the default pipeline produced on them:

* ``world`` / ``expected_Song.json`` — built with ``build_world(seed=11,
  scale=0.08, classes=["Song"])``;
* ``world_settlement`` / ``expected_Settlement.json`` — built with
  ``build_world(seed=23, scale=0.07, classes=["Settlement"])``, a second
  entity class so schema drift that only affects one class profile still
  trips a fixture.

The tests rerun the pipeline and diff byte-for-byte:

* against the committed expectation — any semantic drift in matching,
  clustering, fusion or detection shows up as a diff, not as a silently
  shifted metric;
* across executors — serial, thread and process (workers=2) runs must
  produce identical artifacts (the parallel engine's acceptance
  criterion), and the distributed ``queue`` backend gets its own leg,
  drained by two worker threads over a throwaway spool;
* under ``--incremental`` — runs served from the persistent artifact
  store must reproduce the committed bytes on every backend (the
  incremental engine's acceptance criterion).

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python -c "
    from pathlib import Path
    from repro.api import RunSession
    for world, cls in [('world', 'Song'),
                       ('world_settlement', 'Settlement')]:
        session = RunSession.from_directory(f'tests/golden/{world}')
        blob = session.run(cls, use_cache=False).canonical_json()
        Path(f'tests/golden/expected_{cls}.json').write_text(blob)"

and explain the diff in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import RunSession
from repro.corpus.store import CorpusStore
from repro.io import load_world_directory, save_knowledge_base
from repro.io.serialize import WORLD_KB_FILE

GOLDEN_DIR = Path(__file__).parent / "golden"

#: class name -> (world directory, expected canonical JSON file)
GOLDEN_CASES = {
    "Song": (GOLDEN_DIR / "world", GOLDEN_DIR / "expected_Song.json"),
    "Settlement": (
        GOLDEN_DIR / "world_settlement",
        GOLDEN_DIR / "expected_Settlement.json",
    ),
}

EXECUTORS = ("serial", "thread", "process")


@pytest.fixture(scope="module", params=sorted(GOLDEN_CASES))
def golden_case(request):
    class_name = request.param
    world_dir, expected_file = GOLDEN_CASES[class_name]
    return class_name, world_dir, expected_file


@pytest.fixture(scope="module")
def golden_session(golden_case):
    __, world_dir, __ = golden_case
    return RunSession.from_directory(world_dir)


@pytest.fixture(scope="module")
def expected_blob(golden_case) -> str:
    *__, expected_file = golden_case
    return expected_file.read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def golden_store(golden_case, tmp_path_factory):
    """The golden world ingested into an on-disk corpus store."""
    class_name, world_dir, __ = golden_case
    knowledge_base, corpus = load_world_directory(world_dir)
    store = CorpusStore.create(
        tmp_path_factory.mktemp(f"golden_store_{class_name}"), shards=2
    )
    store.ingest(iter(corpus))
    save_knowledge_base(knowledge_base, store.directory / WORLD_KB_FILE)
    return store


@pytest.fixture(scope="module")
def incremental_session(golden_store):
    return RunSession.from_corpus_store(golden_store)


def test_fixture_is_committed_and_wellformed(golden_case, expected_blob):
    class_name, world_dir, __ = golden_case
    assert (world_dir / "corpus.jsonl").exists()
    assert (world_dir / "knowledge_base.json").exists()
    document = json.loads(expected_blob)
    assert document["summary"]["class_name"] == class_name
    assert document["summary"]["entities"] > 0


def test_default_pipeline_matches_golden(
    golden_case, golden_session, expected_blob
):
    """The serial default pipeline reproduces the committed artifacts."""
    class_name = golden_case[0]
    result = golden_session.run(
        class_name, executor="serial", use_cache=False
    )
    assert result.canonical_json() == expected_blob


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_parallel_runs_byte_identical_to_golden(
    golden_case, golden_session, expected_blob, executor
):
    """Thread/process runs (workers=2) agree with the golden bytes.

    Equality against the *same committed string* the serial test uses is
    exactly the "serial and parallel runs produce byte-identical
    artifacts" acceptance criterion.
    """
    class_name = golden_case[0]
    result = golden_session.run(
        class_name, executor=executor, workers=2, use_cache=False
    )
    assert result.canonical_json() == expected_blob


def test_queue_executor_byte_identical_to_golden(
    golden_case, golden_session, expected_blob, tmp_path
):
    """The distributed queue backend reproduces the committed bytes.

    Two workers drain a throwaway spool while the driver runs the
    pipeline with ``executor='queue'`` — the same acceptance criterion
    as the thread/process legs, extended across a process-shaped
    boundary (chunks travel through pickled payload/result files).  CI
    additionally runs this matrix against *external* ``repro worker``
    subprocesses.
    """
    import threading

    from repro.parallel import run_worker
    from repro.pipeline.pipeline import PipelineConfig

    class_name = golden_case[0]
    spool = tmp_path / "queue"
    stop = threading.Event()
    fleet = [
        threading.Thread(
            target=run_worker,
            args=(spool,),
            kwargs={"stop": stop, "poll_interval": 0.01},
            daemon=True,
        )
        for __ in range(2)
    ]
    for worker in fleet:
        worker.start()
    try:
        result = golden_session.run(
            class_name,
            executor="queue",
            workers=2,
            use_cache=False,
            config=PipelineConfig(queue_dir=str(spool)),
        )
    finally:
        stop.set()
        for worker in fleet:
            worker.join(timeout=10.0)
    assert result.canonical_json() == expected_blob


@pytest.mark.parametrize("executor", EXECUTORS)
def test_explicit_exact_candidate_mode_matches_golden(
    golden_case, golden_session, expected_blob, executor
):
    """``candidate_mode='exact'`` is the committed default, spelled out.

    The retrieve-then-rerank layer (PR 8) must leave the exact path's
    candidate sets provably identical to the historical full scan: an
    explicit ``exact`` config reproduces the golden bytes on every
    backend.  (``fast`` is the approximate mode and is *expected* to
    diverge; it is gated by ``BENCH_retrieval.json`` instead.)
    """
    from repro.pipeline.pipeline import PipelineConfig

    class_name = golden_case[0]
    result = golden_session.run(
        class_name,
        executor=executor,
        workers=2,
        use_cache=False,
        config=PipelineConfig(candidate_mode="exact"),
    )
    assert result.canonical_json() == expected_blob


@pytest.mark.parametrize("executor", EXECUTORS)
def test_incremental_runs_byte_identical_to_golden(
    golden_case, incremental_session, expected_blob, executor
):
    """Store-served incremental runs reproduce the committed bytes.

    All three backends share one persistent artifact store (executor
    knobs are excluded from artifact keys by the determinism contract),
    so after the first backend populates it the others are largely
    *served* the same artifacts — byte-equality here proves both the
    executor contract and the store's purity invariant at once.
    """
    class_name = golden_case[0]
    result = incremental_session.run_incremental(
        class_name, executor=executor, workers=2, use_cache=False
    )
    assert result.canonical_json() == expected_blob


def test_incremental_store_serves_second_backend(
    golden_case, incremental_session
):
    """After the matrix above, a rerun is fully store-served."""
    class_name = golden_case[0]
    incremental_session.run_incremental(
        class_name, executor="serial", use_cache=False
    )
    report = incremental_session.last_incremental_report
    assert report.stage_misses() == 0
    assert report.analysis_computed == 0
    assert report.attributes_computed == 0
    assert report.entities_computed == 0
