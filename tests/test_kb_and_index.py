"""Unit tests for the knowledge base and the label index."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.datatypes import DataType
from repro.index import InvertedIndex, LabelIndex
from repro.kb import KBClass, KBInstance, KBProperty, KBSchema, KnowledgeBase
from repro.kb.profiling import class_profile, property_densities


def make_schema() -> KBSchema:
    schema = KBSchema()
    schema.add_class(KBClass("Thing"))
    schema.add_class(KBClass("Agent", parent="Thing"))
    schema.add_class(KBClass("Person", parent="Agent"))
    schema.add_class(
        KBClass(
            "Athlete",
            parent="Person",
            properties={
                "team": KBProperty("team", DataType.INSTANCE_REFERENCE),
                "height": KBProperty("height", DataType.QUANTITY),
            },
        )
    )
    schema.add_class(KBClass("Player", parent="Athlete"))
    schema.add_class(KBClass("Work", parent="Thing"))
    schema.add_class(KBClass("Album", parent="Work"))
    return schema


class TestSchema:
    def test_ancestry(self):
        schema = make_schema()
        assert schema.ancestry("Player") == [
            "Player", "Athlete", "Person", "Agent", "Thing",
        ]

    def test_descendants(self):
        schema = make_schema()
        assert schema.descendants("Athlete") == {"Athlete", "Player"}

    def test_properties_inherited(self):
        schema = make_schema()
        assert "team" in schema.properties_of("Player")

    def test_unknown_parent_rejected(self):
        schema = KBSchema()
        with pytest.raises(ValueError):
            schema.add_class(KBClass("Orphan", parent="Missing"))

    def test_duplicate_class_rejected(self):
        schema = make_schema()
        with pytest.raises(ValueError):
            schema.add_class(KBClass("Thing"))

    def test_share_parent_within_branch(self):
        schema = make_schema()
        assert schema.share_parent("Player", "Athlete")
        assert schema.share_parent("Athlete", "Player")

    def test_share_parent_across_branches_is_false(self):
        schema = make_schema()
        assert not schema.share_parent("Player", "Album")

    def test_type_overlap_full(self):
        schema = make_schema()
        assert schema.type_overlap({"Player"}, "Player") == 1.0

    def test_type_overlap_partial(self):
        schema = make_schema()
        overlap = schema.type_overlap({"Athlete"}, "Player")
        assert 0.0 < overlap < 1.0

    def test_type_overlap_disjoint_branch(self):
        schema = make_schema()
        # Album still shares the root Thing.
        assert schema.type_overlap({"Album"}, "Player") == pytest.approx(1 / 5)


def make_kb() -> KnowledgeBase:
    kb = KnowledgeBase(make_schema())
    kb.add_instance(
        KBInstance(
            "kb:p1", "Player", ("John Smith",),
            facts={"team": "Packers", "height": 1.88}, page_links=100,
        )
    )
    kb.add_instance(
        KBInstance(
            "kb:p2", "Player", ("Jon Smith", "J. Smith"),
            facts={"team": "Bears"}, page_links=10,
        )
    )
    kb.add_instance(
        KBInstance("kb:a1", "Athlete", ("Mary Jones",), facts={"height": 1.70})
    )
    return kb


class TestKnowledgeBase:
    def test_duplicate_uri_rejected(self):
        kb = make_kb()
        with pytest.raises(ValueError):
            kb.add_instance(KBInstance("kb:p1", "Player", ("X",)))

    def test_unknown_class_rejected(self):
        kb = make_kb()
        with pytest.raises(ValueError):
            kb.add_instance(KBInstance("kb:x", "Nope", ("X",)))

    def test_instances_of_includes_subclasses(self):
        kb = make_kb()
        athletes = kb.instances_of("Athlete")
        assert {instance.uri for instance in athletes} == {"kb:p1", "kb:p2", "kb:a1"}

    def test_instances_of_exact(self):
        kb = make_kb()
        players = kb.instances_of("Athlete", include_subclasses=False)
        assert {instance.uri for instance in players} == {"kb:a1"}

    def test_exact_label_lookup(self):
        kb = make_kb()
        found = kb.instances_with_label("john smith")
        assert [instance.uri for instance in found] == ["kb:p1"]

    def test_candidates_by_label_fuzzy(self):
        kb = make_kb()
        candidates = kb.candidates_by_label("John Smith")
        uris = [instance.uri for instance in candidates]
        assert "kb:p1" in uris
        assert "kb:p2" in uris  # typo'd variant found

    def test_search_cache_consistency(self):
        kb = make_kb()
        first = kb.label_matches("john smith")
        second = kb.label_matches("john smith")
        assert first == second

    def test_property_values(self):
        kb = make_kb()
        assert sorted(kb.property_values("Player", "team")) == ["Bears", "Packers"]

    def test_popularity_rank(self):
        kb = make_kb()
        assert kb.popularity_rank(["kb:p2", "kb:p1"]) == ["kb:p1", "kb:p2"]

    def test_profiling(self):
        kb = make_kb()
        profile = class_profile(kb, "Player")
        assert profile.instances == 2
        assert profile.facts == 3
        densities = property_densities(kb, "Player")
        by_name = {row.property_name: row.density for row in densities}
        assert by_name["team"] == 1.0
        assert by_name["height"] == 0.5


class TestInvertedIndex:
    def test_add_and_postings(self):
        index = InvertedIndex()
        index.add("d1", ["green", "day"])
        assert index.postings("green") == {"d1"}
        assert index.postings("unknown") == set()

    def test_duplicate_doc_rejected(self):
        index = InvertedIndex()
        index.add("d1", ["a"])
        with pytest.raises(ValueError):
            index.add("d1", ["b"])

    def test_identical_readd_is_idempotent(self):
        index = InvertedIndex()
        index.add("d1", ["green", "day"])
        index.add("d1", ["day", "green"])  # same content, any order
        assert index.postings("green") == {"d1"}
        assert len(index) == 1

    def test_strict_mode_rejects_any_readd(self):
        index = InvertedIndex(strict=True)
        index.add("d1", ["a"])
        with pytest.raises(ValueError, match="already indexed"):
            index.add("d1", ["a"])

    def test_remove_withdraws_postings_and_fuzzy_candidates(self):
        index = InvertedIndex()
        index.add("d1", ["smith", "jones"])
        index.add("d2", ["smith"])
        index.remove("d1")
        assert "d1" not in index
        assert index.postings("smith") == {"d2"}
        assert index.postings("jones") == set()
        # A fully-forgotten token no longer matches fuzzily.
        assert "jones" not in index.similar_tokens("jines")
        with pytest.raises(KeyError):
            index.remove("d1")

    def test_remove_then_readd(self):
        index = InvertedIndex()
        index.add("d1", ["alpha"])
        index.remove("d1")
        index.add("d1", ["beta"])
        assert index.postings("beta") == {"d1"}

    def test_add_or_replace(self):
        index = InvertedIndex()
        index.add_or_replace("d1", ["old", "shared"])
        index.add_or_replace("d1", ["new", "shared"])
        assert index.postings("old") == set()
        assert index.postings("new") == {"d1"}
        assert index.postings("shared") == {"d1"}
        assert len(index) == 1

    def test_idf_reflects_removal(self):
        index = InvertedIndex()
        index.add("d1", ["common"])
        index.add("d2", ["common", "rare"])
        before = index.idf("rare")
        index.remove("d1")
        assert index.idf("rare") != before  # total shrank with the corpus

    def test_payload_roundtrip(self):
        index = InvertedIndex()
        index.add("d1", ["green", "day"])
        index.add("d2", ["green"])
        restored = InvertedIndex.from_payload(index.to_payload())
        assert restored.postings("green") == {"d1", "d2"}
        assert restored.tokens_of("d1") == frozenset({"green", "day"})
        assert len(restored) == 2

    def test_payload_roundtrip_with_codec(self):
        index = InvertedIndex()
        index.add(("t1", 0), ["alpha"])
        payload = index.to_payload(doc_encoder=list)
        restored = InvertedIndex.from_payload(payload, doc_decoder=tuple)
        assert restored.postings("alpha") == {("t1", 0)}

    def test_idf_orders_rarity(self):
        index = InvertedIndex()
        index.add("d1", ["common", "rare"])
        index.add("d2", ["common"])
        assert index.idf("rare") > index.idf("common")

    def test_similar_tokens_edit_distance_one(self):
        index = InvertedIndex()
        index.add("d1", ["smith"])
        assert "smith" in index.similar_tokens("smyth")

    def test_short_tokens_exact_only(self):
        index = InvertedIndex()
        index.add("d1", ["cat"])
        assert index.similar_tokens("car") == set()


class TestLabelIndex:
    def test_exact_payloads(self):
        index = LabelIndex()
        index.add("John Smith", "u1")
        index.add("John Smith", "u2")
        assert set(index.payloads_for("john  smith")) == {"u1", "u2"}

    def test_search_ranks_exact_above_fuzzy(self):
        index = LabelIndex()
        index.add("John Smith", "u1")
        index.add("Jon Smith", "u2")
        results = index.search("John Smith")
        assert results[0].label == "john smith"

    def test_search_limit(self):
        index = LabelIndex()
        for position in range(20):
            index.add(f"Smith {position}", position)
        assert len(index.search("Smith", limit=5)) == 5

    def test_empty_query(self):
        index = LabelIndex()
        index.add("John", "u1")
        assert index.search("!!!") == []

    def test_remove_payload_then_label(self):
        index = LabelIndex()
        index.add("John Smith", "u1")
        index.add("John Smith", "u2")
        index.remove("John Smith", "u1")
        assert set(index.payloads_for("john smith")) == {"u2"}
        index.remove("John Smith", "u2")
        assert index.payloads_for("John Smith") == ()
        assert index.search("John Smith") == []
        with pytest.raises(KeyError):
            index.remove("John Smith")

    def test_remove_whole_label(self):
        index = LabelIndex()
        index.add("Alpha", 1)
        index.add("Alpha", 2)
        index.remove("Alpha")
        assert len(index) == 0
        with pytest.raises(KeyError, match="not registered"):
            index.add("Beta", 1) or index.remove("Beta", 99)

    def test_label_payload_roundtrip(self):
        index = LabelIndex(fuzzy=False)
        index.add("John Smith", "u1")
        index.add("Jane Doe", ("t1", 3))  # row-id tuple payload
        restored = LabelIndex.from_payload(index.to_payload())
        assert set(restored.payloads_for("john smith")) == {"u1"}
        assert restored.payloads_for("jane doe") == (("t1", 3),)
        assert [match.label for match in restored.search("John Smith")] == [
            match.label for match in index.search("John Smith")
        ]

    def test_deterministic_tie_break(self):
        index = LabelIndex()
        index.add("Alpha Song", 1)
        index.add("Beta Song", 2)
        first = index.search("Song")
        second = index.search("Song")
        assert [match.label for match in first] == [match.label for match in second]

    @given(st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=20))
    def test_search_never_crashes(self, labels):
        index = LabelIndex()
        for position, label in enumerate(labels):
            index.add(label, position)
        for label in labels:
            for match in index.search(label):
                assert 0.0 <= match.score <= 1.0 + 1e-9
