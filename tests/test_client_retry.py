"""Client transient-retry behavior against a scripted flaky server.

The fake server consumes a per-path script of behaviors — serve a JSON
document, abort the connection before responding (the client sees a
``RemoteDisconnected`` transport error, status 0), or serve a chunked
NDJSON stream that dies mid-chunk, truncating a record in flight (the
client's read raises ``IncompleteRead`` mid-stream).  Once
a path's script is exhausted every further request aborts, so a test
that makes more requests than it scripted fails loudly.

What the scripts prove:

* one-shot calls (``health`` …) stay fail-fast — a server that was
  never reachable is a configuration error, not a blip;
* ``wait_for_run`` is fail-fast on its *first* poll, then rides out
  transient blips with bounded backoff, and reports the attempt count
  when the budget is exhausted;
* ``stream_events`` reconnects after a mid-stream drop and resumes via
  ``after_seq`` from the last record seen — no event lost, none
  re-yielded — and gives up with a descriptive error when consecutive
  failures exhaust the budget.
"""

from __future__ import annotations

import contextlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

import pytest

from repro.serve.client import ServiceClient, ServiceClientError

RUNNING = {"run_id": "r1", "status": "running"}
DONE = {"run_id": "r1", "status": "done"}


def _record(seq):
    return {"seq": seq, "type": "span_started", "name": f"event-{seq}"}


class _FlakyHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    script: dict  # path -> list of behavior tuples, consumed in order
    log: list  # every request's path + query, in arrival order
    lock: threading.Lock

    def log_message(self, *args):  # silence stderr
        pass

    def _next_behavior(self, path):
        with self.lock:
            self.log.append(
                path + (f"?{urlparse(self.path).query}" if urlparse(self.path).query else "")
            )
            remaining = self.script.get(path, [])
            if remaining:
                return remaining.pop(0)
            return ("abort",)

    def do_GET(self):
        path = urlparse(self.path).path
        behavior = self._next_behavior(path)
        kind = behavior[0]
        if kind == "abort":
            # Close without a status line: RemoteDisconnected client-side.
            self.close_connection = True
            return
        if kind == "json":
            body = json.dumps(behavior[1]).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if kind in ("stream_partial", "stream_final"):
            # Chunked framing, like the real event endpoint: a close
            # without the terminating 0-chunk is a *detectable* drop
            # (IncompleteRead on the client's next readline), while
            # stream_final ends the stream cleanly.
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            for record in behavior[1]:
                line = json.dumps(record).encode("utf-8") + b"\n"
                self.wfile.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
            if kind == "stream_final":
                self.wfile.write(b"0\r\n\r\n")
            else:
                # Die mid-chunk: advertise bytes that never arrive, the
                # way a killed server truncates a record in flight.
                self.wfile.write(b"40\r\n{\"seq\": 99")
            self.close_connection = True
            return
        raise AssertionError(f"unknown behavior {behavior!r}")


@contextlib.contextmanager
def flaky_server(script):
    """A scripted server; yields (base_url, request_log)."""
    handler = type(
        "ScriptedHandler",
        (_FlakyHandler,),
        {"script": script, "log": [], "lock": threading.Lock()},
    )
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", handler.log
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)


def make_client(base_url, **kwargs):
    options = {"timeout": 10.0, "retry_backoff": 0.01, **kwargs}
    return ServiceClient(base_url, **options)


class TestOneShotCalls:
    def test_fail_fast_without_retry(self):
        with flaky_server({"/health": [("abort",)]}) as (base_url, log):
            client = make_client(base_url, transient_retries=3)
            with pytest.raises(ServiceClientError) as caught:
                client.health()
            assert caught.value.status == 0
            assert "cannot reach" in caught.value.message
            assert len(log) == 1  # exactly one attempt, no retry

    def test_success_passes_through(self):
        with flaky_server({"/health": [("json", {"status": "ok"})]}) as (
            base_url,
            __,
        ):
            assert make_client(base_url).health() == {"status": "ok"}


class TestWaitForRun:
    def test_first_poll_fail_fast(self):
        with flaky_server({"/runs/r1": [("abort",)]}) as (base_url, log):
            client = make_client(base_url, transient_retries=3)
            with pytest.raises(ServiceClientError) as caught:
                client.wait_for_run("r1", timeout=5.0, poll=0.01)
            assert caught.value.status == 0
            assert len(log) == 1

    def test_recovers_from_transient_blips(self):
        script = {
            "/runs/r1": [
                ("json", RUNNING),
                ("abort",),
                ("abort",),
                ("json", DONE),
            ]
        }
        with flaky_server(script) as (base_url, log):
            client = make_client(base_url, transient_retries=3)
            document = client.wait_for_run("r1", timeout=10.0, poll=0.01)
            assert document["status"] == "done"
            assert len(log) == 4

    def test_exhausted_retries_report_attempts(self):
        script = {"/runs/r1": [("json", RUNNING)]}  # then aborts forever
        with flaky_server(script) as (base_url, __):
            client = make_client(base_url, transient_retries=1)
            with pytest.raises(ServiceClientError) as caught:
                client.wait_for_run("r1", timeout=10.0, poll=0.01)
            assert caught.value.status == 0
            assert "after 2 attempts" in caught.value.message


class TestStreamEvents:
    def test_resumes_after_drop_via_after_seq(self):
        script = {
            "/runs/r1/events": [
                ("stream_partial", [_record(1), _record(2), _record(3)]),
                (
                    "stream_final",
                    [
                        {"type": "heartbeat", "ts": 1.0},
                        _record(4),
                        _record(5),
                    ],
                ),
            ]
        }
        with flaky_server(script) as (base_url, log):
            client = make_client(base_url, transient_retries=3)
            records = list(client.stream_events("r1"))
        assert [record["seq"] for record in records] == [1, 2, 3, 4, 5]
        # The reconnect resumed past the last seq seen before the drop
        # (and the heartbeat was filtered out, not yielded).
        assert log == ["/runs/r1/events", "/runs/r1/events?after_seq=3"]

    def test_first_connection_fail_fast(self):
        with flaky_server({"/runs/r1/events": [("abort",)]}) as (
            base_url,
            log,
        ):
            client = make_client(base_url, transient_retries=3)
            with pytest.raises(ServiceClientError) as caught:
                list(client.stream_events("r1"))
            assert caught.value.status == 0
            assert len(log) == 1

    def test_gives_up_after_consecutive_drops(self):
        script = {
            "/runs/r1/events": [
                ("stream_partial", [_record(1)]),
                ("stream_partial", []),
                ("stream_partial", []),
            ]
        }
        with flaky_server(script) as (base_url, __):
            client = make_client(base_url, transient_retries=1)
            received = []
            with pytest.raises(ServiceClientError) as caught:
                for record in client.stream_events("r1"):
                    received.append(record)
        # The record before the drops still arrived exactly once.
        assert [record["seq"] for record in received] == [1]
        assert "did not recover after 2 attempt(s)" in caught.value.message

    def test_heartbeats_surfaced_on_request(self):
        script = {
            "/runs/r1/events": [
                (
                    "stream_final",
                    [{"type": "heartbeat", "ts": 1.0}, _record(1)],
                )
            ]
        }
        with flaky_server(script) as (base_url, __):
            client = make_client(base_url)
            records = list(client.stream_events("r1", heartbeats=True))
        assert [record.get("type") for record in records] == [
            "heartbeat",
            "span_started",
        ]
