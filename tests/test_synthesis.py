"""Tests for the synthetic world and gold standard builders."""

from __future__ import annotations

import pytest

from repro.goldstandard.annotations import LABEL_COLUMN
from repro.goldstandard.stats import gold_standard_stats
from repro.synthesis.api import build_gold_standard, build_world
from repro.synthesis.profiles import CLASS_SPECS, WorldScale, class_spec
from repro.webtables.stats import corpus_stats


class TestProfiles:
    def test_three_classes(self):
        assert set(CLASS_SPECS) == {
            "GridironFootballPlayer", "Song", "Settlement",
        }

    def test_alias(self):
        assert class_spec("GF-Player").name == "GridironFootballPlayer"

    def test_unknown_class(self):
        with pytest.raises(KeyError):
            class_spec("Movie")

    def test_scale_application(self):
        spec = class_spec("Song")
        scaled = WorldScale(0.5).apply(spec)
        assert scaled.kb_count == round(spec.kb_count * 0.5)
        assert scaled.n_tables == round(spec.n_tables * 0.5)

    def test_property_lookup(self):
        assert class_spec("Song").property("runtime").render_hint == "runtime"
        with pytest.raises(KeyError):
            class_spec("Song").property("nope")


class TestWorld:
    def test_deterministic(self):
        first = build_world(seed=3, scale=WorldScale(0.1), classes=["Song"])
        second = build_world(seed=3, scale=WorldScale(0.1), classes=["Song"])
        assert first.corpus.table_ids() == second.corpus.table_ids()
        first_table = first.corpus.get(first.corpus.table_ids()[0])
        second_table = second.corpus.get(second.corpus.table_ids()[0])
        assert first_table.rows == second_table.rows

    def test_different_seeds_differ(self):
        first = build_world(seed=3, scale=WorldScale(0.1), classes=["Song"])
        second = build_world(seed=4, scale=WorldScale(0.1), classes=["Song"])
        table_a = first.corpus.get(first.corpus.table_ids()[0])
        table_b = second.corpus.get(second.corpus.table_ids()[0])
        assert table_a.rows != table_b.rows

    def test_kb_membership_consistency(self, tiny_world):
        for gt_id, uri in tiny_world.kb_uri_of.items():
            assert tiny_world.entities[gt_id].in_kb
            assert uri in tiny_world.knowledge_base
            assert tiny_world.gt_of_uri[uri] == gt_id

    def test_row_truth_references_valid_rows(self, tiny_world):
        for (table_id, row_index), gt_id in list(tiny_world.row_truth.items())[:500]:
            table = tiny_world.corpus.get(table_id)
            assert 0 <= row_index < table.n_rows
            assert gt_id in tiny_world.entities

    def test_column_truth_references_valid_columns(self, tiny_world):
        for (table_id, column), property_name in tiny_world.column_truth.items():
            table = tiny_world.corpus.get(table_id)
            assert 0 <= column < table.n_columns
            if property_name != LABEL_COLUMN:
                entity_classes = {
                    spec.name for spec in CLASS_SPECS.values()
                }
                # Property belongs to some class schema (target or distractor).
                assert property_name.isidentifier()

    def test_corpus_shape_close_to_paper(self, tiny_world):
        stats = corpus_stats(tiny_world.corpus)
        assert 5 <= stats.rows_avg <= 20
        assert 2 <= stats.cols_avg <= 6
        assert stats.rows_median < stats.rows_avg  # skew as in Table 3

    def test_class_new_ratios_ordered(self, tiny_world):
        """Song has by far the most long-tail entities, Settlement fewest."""
        ratios = {}
        for class_name in CLASS_SPECS:
            new = len(tiny_world.true_new_entities(class_name))
            in_kb = len(tiny_world.entities_of_class(class_name, in_kb=True))
            ratios[class_name] = new / max(1, in_kb)
        assert ratios["Song"] > ratios["GridironFootballPlayer"] > ratios["Settlement"]

    def test_junk_tables_have_no_class(self, tiny_world):
        junk = [
            table_id
            for table_id, truth in tiny_world.table_class_truth.items()
            if truth is None
        ]
        assert junk  # some exist
        for table_id in junk[:5]:
            assert not any(
                key[0] == table_id for key in tiny_world.column_truth
            )


class TestGoldStandard:
    def test_clusters_reference_annotated_tables(self, song_gold):
        table_ids = set(song_gold.table_ids)
        for cluster in song_gold.clusters:
            for table_id, __ in cluster.row_ids:
                assert table_id in table_ids

    def test_new_clusters_have_no_uri(self, song_gold):
        for cluster in song_gold.new_clusters():
            assert cluster.kb_uri is None
        for cluster in song_gold.existing_clusters():
            assert cluster.kb_uri is not None

    def test_rows_unique_across_clusters(self, song_gold):
        rows = song_gold.annotated_rows()
        assert len(rows) == len(set(rows))

    def test_homonym_groups_complete(self, tiny_world, song_gold):
        """Every homonym group is either fully in or fully out."""
        included = {
            cluster.cluster_id.removeprefix("gs:") for cluster in song_gold.clusters
        }
        groups_included = {
            tiny_world.entities[gt_id].homonym_group for gt_id in included
        }
        class_tables = set(tiny_world.tables_of_class("Song"))
        for gt_id, entity in tiny_world.entities.items():
            if entity.class_name != "Song":
                continue
            if entity.homonym_group not in groups_included:
                continue
            has_rows = any(
                row_id[0] in class_tables
                for row_id in tiny_world.rows_of_entity(gt_id)
            )
            if has_rows:
                assert gt_id in included

    def test_stats_shape(self, song_gold, tiny_world):
        stats = gold_standard_stats(song_gold, tiny_world.corpus)
        assert stats.new_clusters > stats.existing_clusters * 0.5  # songs: many new
        assert stats.correct_value_present <= stats.value_groups

    def test_fact_values_match_ground_truth(self, tiny_world, song_gold):
        for fact in song_gold.facts[:50]:
            gt_id = fact.cluster_id.removeprefix("gs:")
            entity = tiny_world.entities[gt_id]
            assert fact.property_name in entity.facts
            assert fact.value == entity.facts[fact.property_name]
