"""Unit tests for schema matching components."""

from __future__ import annotations

import pytest

from repro.datatypes import DataType
from repro.goldstandard.annotations import LABEL_COLUMN
from repro.kb import KBClass, KBInstance, KBProperty, KBSchema, KnowledgeBase
from repro.matching import (
    AttributePropertyMatcher,
    MatcherFeedback,
    SchemaMatcher,
    TableClassMatcher,
    build_row_records,
    detect_label_attribute,
    evaluate_attribute_matching,
)
from repro.matching.learning import (
    AttributeMatchingModel,
    AttributeSample,
    learn_attribute_model,
)
from repro.matching.matchers import AttributeMatchers, HeaderStatistics
from repro.matching.pools import ValuePool
from repro.datatypes.values import DateValue
from repro.webtables import TableCorpus, WebTable


def small_kb() -> KnowledgeBase:
    schema = KBSchema()
    schema.add_class(KBClass("Thing"))
    schema.add_class(
        KBClass(
            "Player",
            parent="Thing",
            properties={
                "team": KBProperty("team", DataType.INSTANCE_REFERENCE, ("team",)),
                "height": KBProperty("height", DataType.QUANTITY, ("height",), 0.03),
                "draftYear": KBProperty("draftYear", DataType.DATE, ("draft year",)),
            },
        )
    )
    kb = KnowledgeBase(schema)
    players = [
        ("Aaron Brooks", "Packers", 1.88, 2005),
        ("Brett Favre", "Packers", 1.88, 1991),
        ("Dan Marino", "Dolphins", 1.93, 1983),
        ("Joe Montana", "49ers", 1.88, 1979),
    ]
    for index, (name, team, height, year) in enumerate(players):
        kb.add_instance(
            KBInstance(
                f"kb:{index}", "Player", (name,),
                facts={"team": team, "height": height, "draftYear": DateValue(year)},
                page_links=100 - index,
            )
        )
    return kb


def player_table() -> WebTable:
    return WebTable(
        "t1",
        ("player", "team", "ht"),
        [
            ("Aaron Brooks", "Packers", "6'2\""),
            ("Dan Marino", "Dolphins", "6'4\""),
            ("Joe Montana", "49ers", "6'2\""),
            ("Totally New Guy", "Packers", "6'0\""),
        ],
    )


class TestLabelAttribute:
    def test_picks_most_unique_text_column(self):
        table = player_table()
        types = {0: DataType.TEXT, 1: DataType.TEXT, 2: DataType.QUANTITY}
        assert detect_label_attribute(table, types) == 0

    def test_tie_prefers_leftmost(self):
        table = WebTable("t", ("a", "b"), [("x", "p"), ("y", "q")])
        types = {0: DataType.TEXT, 1: DataType.TEXT}
        assert detect_label_attribute(table, types) == 0

    def test_no_text_column(self):
        table = WebTable("t", ("a",), [("1",), ("2",)])
        assert detect_label_attribute(table, {0: DataType.QUANTITY}) is None


class TestValuePool:
    def test_quantity_tolerance(self):
        pool = ValuePool(DataType.QUANTITY, [100.0, 200.0], tolerance=0.05)
        assert pool.contains_equal(103.0)
        assert not pool.contains_equal(150.0)

    def test_date_year_vs_day(self):
        pool = ValuePool(DataType.DATE, [DateValue(1987, 3, 14), DateValue(1990)])
        assert pool.contains_equal(DateValue(1987))
        assert pool.contains_equal(DateValue(1990, 5, 5))
        assert not pool.contains_equal(DateValue(1991))

    def test_string_normalized_membership(self):
        pool = ValuePool(DataType.INSTANCE_REFERENCE, ["Green Bay Packers"])
        assert pool.contains_equal("green bay  packers")
        assert not pool.contains_equal("Chicago Bears")

    def test_nominal_integer(self):
        pool = ValuePool(DataType.NOMINAL_INTEGER, [1, 2, 3])
        assert pool.contains_equal(2)
        assert not pool.contains_equal(4)


class TestTableClassMatcher:
    def test_matches_player_table(self):
        kb = small_kb()
        matcher = TableClassMatcher(kb)
        table = player_table()
        types = {0: DataType.TEXT, 1: DataType.TEXT, 2: DataType.QUANTITY}
        result = matcher.match(table, types, label_column=0)
        assert result.class_name == "Player"
        assert result.score > 0

    def test_unknown_rows_give_no_class(self):
        kb = small_kb()
        matcher = TableClassMatcher(kb)
        table = WebTable(
            "t2", ("name", "x"),
            [("Zzz Qqq", "1"), ("Www Vvv", "2"), ("Rrr Ttt", "3")],
        )
        types = {0: DataType.TEXT, 1: DataType.QUANTITY}
        result = matcher.match(table, types, label_column=0)
        assert result.class_name is None

    def test_no_label_column_gives_no_class(self):
        kb = small_kb()
        result = TableClassMatcher(kb).match(player_table(), {}, None)
        assert result.class_name is None


class TestAttributeMatchers:
    def test_kb_overlap_scores_matching_column(self):
        kb = small_kb()
        matchers = AttributeMatchers(kb, "Player")
        table = player_table()
        prop = kb.schema.properties_of("Player")["team"]
        scores = matchers.score_all(table, 1, prop)
        assert scores["kb_overlap"] == 1.0

    def test_kb_label_header_similarity(self):
        kb = small_kb()
        matchers = AttributeMatchers(kb, "Player")
        table = player_table()
        prop = kb.schema.properties_of("Player")["team"]
        scores = matchers.score_all(table, 1, prop)
        assert scores["kb_label"] == 1.0

    def test_wt_label_requires_stats(self):
        kb = small_kb()
        stats = HeaderStatistics({("ht", "height"): 0.9})
        matchers = AttributeMatchers(kb, "Player", header_stats=stats)
        table = player_table()
        prop = kb.schema.properties_of("Player")["height"]
        scores = matchers.score_all(table, 2, prop)
        assert scores["wt_label"] == 0.9

    def test_wt_label_unseen_header_is_none(self):
        stats = HeaderStatistics({("other", "height"): 0.9})
        assert stats.score("ht", "height") is None


class TestModelLearning:
    def test_learned_model_separates(self):
        samples = []
        for index in range(40):
            correct = index % 2 == 0
            samples.append(
                AttributeSample(
                    "t", index, "team",
                    {"kb_overlap": 0.9 if correct else 0.2, "kb_label": None},
                    correct,
                )
            )
        model = learn_attribute_model("Player", samples, ("kb_overlap", "kb_label"))
        good = model.aggregate({"kb_overlap": 0.9, "kb_label": None})
        bad = model.aggregate({"kb_overlap": 0.2, "kb_label": None})
        assert good > model.threshold_for("team") > bad

    def test_uniform_fallback(self):
        model = AttributeMatchingModel.uniform("Player", ("a", "b"))
        assert model.aggregate({"a": 1.0, "b": 1.0}) == pytest.approx(1.0)

    def test_renormalization_over_available(self):
        model = AttributeMatchingModel(
            "Player", ("a", "b"), {"a": 0.5, "b": 0.5}
        )
        # Only 'a' available: its score should not be halved.
        assert model.aggregate({"a": 0.8, "b": None}) == pytest.approx(0.8)

    def test_all_missing_scores_zero(self):
        model = AttributeMatchingModel("Player", ("a",), {"a": 1.0})
        assert model.aggregate({"a": None}) == 0.0


class TestEvaluateMatching:
    def test_perfect(self):
        actual = {("t", 1): "team"}
        scores = evaluate_attribute_matching(actual, actual)
        assert scores.f1 == 1.0

    def test_spurious_prediction_hurts_precision(self):
        predicted = {("t", 1): "team", ("t", 2): "height"}
        actual = {("t", 1): "team"}
        scores = evaluate_attribute_matching(predicted, actual)
        assert scores.precision == 0.5
        assert scores.recall == 1.0

    def test_empty_predictions(self):
        scores = evaluate_attribute_matching({}, {("t", 1): "team"})
        assert scores.f1 == 0.0


class TestSchemaMatcherEndToEnd:
    def test_match_corpus_produces_correspondences(self):
        kb = small_kb()
        corpus = TableCorpus([player_table()])
        matcher = SchemaMatcher(kb)
        mapping = matcher.match_corpus(corpus)
        table_mapping = mapping.table("t1")
        assert table_mapping.class_name == "Player"
        assert table_mapping.label_column == 0
        matched_properties = {
            correspondence.property_name
            for correspondence in table_mapping.attributes.values()
        }
        assert "team" in matched_properties

    def test_known_classes_bypass(self):
        kb = small_kb()
        corpus = TableCorpus([player_table()])
        matcher = SchemaMatcher(kb)
        mapping = matcher.match_corpus(corpus, known_classes={"t1": "Player"})
        assert mapping.table("t1").class_name == "Player"
        assert mapping.table("t1").class_score == 1.0

    def test_row_records_projection(self):
        kb = small_kb()
        corpus = TableCorpus([player_table()])
        mapping = SchemaMatcher(kb).match_corpus(corpus)
        records = build_row_records(corpus, mapping, "Player")
        assert len(records) == 4
        by_label = {record.norm_label: record for record in records}
        assert "aaron brooks" in by_label
        record = by_label["aaron brooks"]
        assert record.values.get("team") == "Packers"
        assert record.label_tokens == ("aaron", "brooks")


class TestWorldSchemaMatching:
    """Integration: matching quality on the synthetic world."""

    def test_table_class_accuracy(self, tiny_world):
        matcher = SchemaMatcher(tiny_world.knowledge_base)
        correct = 0
        total = 0
        sample = list(tiny_world.table_class_truth.items())[:60]
        for table_id, truth in sample:
            predicted, __ = matcher.table_class(tiny_world.corpus, table_id)
            normalize = lambda name: "Song" if name == "Single" else name
            total += 1
            if (predicted is None and truth is None) or (
                predicted is not None
                and truth is not None
                and normalize(predicted) == normalize(truth)
            ):
                correct += 1
        assert correct / total > 0.85

    def test_label_detection_accuracy(self, tiny_world):
        matcher = SchemaMatcher(tiny_world.knowledge_base)
        correct = 0
        total = 0
        for (table_id, column), truth in tiny_world.column_truth.items():
            if truth != LABEL_COLUMN:
                continue
            __, label_column = matcher.analyze_table(tiny_world.corpus, table_id)
            total += 1
            if label_column == column:
                correct += 1
        assert correct / total > 0.9
