"""Unit tests for the web table model and gold standard structures."""

from __future__ import annotations

import pytest

from repro.goldstandard.annotations import GoldStandard, GSCluster, GSFact
from repro.webtables import TableCorpus, WebTable, corpus_stats


class TestWebTable:
    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            WebTable("t", ("a", "b"), [("1",)])

    def test_column_access(self):
        table = WebTable("t", ("a", "b"), [("1", "2"), ("3", None)])
        assert table.column(1) == ["2", None]

    def test_row_view(self):
        table = WebTable("t", ("a",), [("x",), ("y",)])
        row = table.row(1)
        assert row.row_id == ("t", 1)
        assert row.cell(0) == "y"

    def test_iter_rows(self):
        table = WebTable("t", ("a",), [("x",), ("y",)])
        assert [row.cell(0) for row in table.iter_rows()] == ["x", "y"]


class TestCorpus:
    def test_duplicate_table_rejected(self):
        corpus = TableCorpus([WebTable("t", ("a",), [("x",)])])
        with pytest.raises(ValueError):
            corpus.add(WebTable("t", ("a",), [("y",)]))

    def test_duplicate_error_names_both_tables_provenance(self):
        corpus = TableCorpus(
            [WebTable("t", ("a",), [("x",)], url="http://first.example")]
        )
        with pytest.raises(ValueError) as error:
            corpus.add(
                WebTable("t", ("a",), [("y",), ("z",)], url="http://second.example")
            )
        message = str(error.value)
        assert "http://first.example" in message
        assert "http://second.example" in message
        assert "1x1" in message and "2x1" in message

    def test_row_resolution(self):
        corpus = TableCorpus([WebTable("t", ("a",), [("x",)])])
        assert corpus.row(("t", 0)).cell(0) == "x"

    def test_get_missing_table_is_descriptive(self):
        corpus = TableCorpus([WebTable("table-1", ("a",), [("x",)])])
        with pytest.raises(KeyError) as error:
            corpus.get("table-9")
        message = str(error.value)
        assert "table-9" in message
        assert "1 tables" in message
        # Near-miss hint: ids sharing the prefix are suggested.
        assert "table-1" in message

    def test_row_missing_table_names_the_row_id(self):
        corpus = TableCorpus()
        with pytest.raises(KeyError, match="'gone', 3"):
            corpus.row(("gone", 3))

    def test_stats(self):
        corpus = TableCorpus(
            [
                WebTable("t1", ("a", "b"), [("1", "2")] * 4),
                WebTable("t2", ("a", "b", "c"), [("1", "2", "3")] * 2),
            ]
        )
        stats = corpus_stats(corpus)
        assert stats.n_tables == 2
        assert stats.rows_avg == 3.0
        assert stats.cols_max == 3

    def test_empty_corpus_stats_raise(self):
        with pytest.raises(ValueError):
            corpus_stats(TableCorpus())

    def test_stats_all_fields_on_uneven_corpus(self):
        corpus = TableCorpus(
            [
                WebTable("t1", ("a",), [("x",)]),
                WebTable("t2", ("a", "b"), [("1", "2")] * 3),
                WebTable("t3", ("a", "b", "c", "d"), [("1", "2", "3", "4")] * 8),
            ]
        )
        stats = corpus_stats(corpus)
        assert stats.n_tables == 3
        assert stats.rows_avg == pytest.approx(4.0)
        assert stats.rows_median == 3
        assert (stats.rows_min, stats.rows_max) == (1, 8)
        assert stats.cols_avg == pytest.approx(7 / 3)
        assert stats.cols_median == 2
        assert (stats.cols_min, stats.cols_max) == (1, 4)

    def test_stats_single_table(self):
        corpus = TableCorpus([WebTable("t", ("a", "b"), [("1", "2")] * 5)])
        stats = corpus_stats(corpus)
        assert stats.rows_avg == stats.rows_median == 5
        assert stats.rows_min == stats.rows_max == 5
        assert stats.cols_avg == stats.cols_median == 2

    def test_stats_over_store_backed_corpus(self, tmp_path):
        from repro.corpus import CorpusStore

        tables = [
            WebTable("t1", ("a", "b"), [("1", "2")] * 4),
            WebTable("t2", ("a", "b", "c"), [("1", "2", "3")] * 2),
        ]
        store = CorpusStore.create(tmp_path / "store", shards=2)
        store.ingest(iter(tables))
        assert corpus_stats(store.as_corpus()) == corpus_stats(
            TableCorpus(tables)
        )


class TestGoldStandardModel:
    def test_new_cluster_with_uri_rejected(self):
        with pytest.raises(ValueError):
            GSCluster("c", (("t", 0),), is_new=True, kb_uri="kb:x", homonym_group="g")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            GSCluster("c", (), is_new=True, kb_uri=None, homonym_group="g")

    def test_cluster_of_row_reverse_map(self):
        cluster = GSCluster("c1", (("t", 0), ("t", 1)), False, "kb:x", "g")
        gold = GoldStandard("Song", ("t",), [cluster], {})
        assert gold.cluster_of_row() == {("t", 0): "c1", ("t", 1): "c1"}

    def test_facts_of(self):
        cluster = GSCluster("c1", (("t", 0),), True, None, "g")
        gold = GoldStandard(
            "Song", ("t",), [cluster], {},
            facts=[GSFact("c1", "runtime", 200.0, True)],
        )
        assert len(gold.facts_of("c1")) == 1
        assert gold.facts_of("missing") == []

    def test_get_cluster_missing(self):
        gold = GoldStandard("Song", (), [], {})
        with pytest.raises(KeyError):
            gold.get_cluster("nope")
