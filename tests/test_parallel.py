"""The parallel execution engine: ordering, failure provenance, env
defaults, observer plumbing — and the determinism contract, asserted
property-based across Serial/Thread/Process executors on random inputs
and random corpora.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import RunSession, config_hash
from repro.clustering.clusterer import RowClusterer
from repro.clustering.context import RowMetricContext, make_row_metrics
from repro.clustering.similarity import RowSimilarity
from repro.matching.records import build_row_records
from repro.matching.schema_matcher import SchemaMatcher
from repro.ml.aggregation import StaticWeightedAggregator
from repro.parallel import (
    EXECUTOR_NAMES,
    ExecutorError,
    ExecutorObserver,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_executor_name,
    default_worker_count,
    make_executor,
)
from repro.pipeline.pipeline import PipelineConfig
from repro.webtables import TableCorpus, WebTable


# -- module-level batch functions (picklable for process pools) ---------
def square_batch(chunk: list[int]) -> list[int]:
    return [value * value for value in chunk]


def bad_count_batch(chunk: list[int]) -> list[int]:
    return chunk[:-1]  # one result short


def explode_on_seven(chunk: list[int]) -> list[int]:
    for value in chunk:
        if value == 7:
            raise ValueError("seven is right out")
    return chunk


@pytest.fixture(scope="module")
def executors():
    """One instance of each executor, pools shared across tests."""
    built = [SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)]
    yield built
    for executor in built:
        executor.close()


# -- map_batches mechanics ---------------------------------------------
class TestMapBatches:
    def test_empty_items(self, executors):
        for executor in executors:
            assert executor.map_batches(square_batch, []) == []

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 100])
    def test_order_preserved(self, executors, chunk_size):
        items = list(range(29))
        expected = [value * value for value in items]
        for executor in executors:
            assert (
                executor.map_batches(square_batch, items, chunk_size=chunk_size)
                == expected
            )

    def test_result_count_mismatch_rejected(self, executors):
        for executor in executors:
            with pytest.raises(ValueError, match="returned 3 results"):
                executor.map_batches(bad_count_batch, [1, 2, 3, 4], chunk_size=4)

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            SerialExecutor(0)

    def test_observer_sees_every_item(self, executors):
        class Recorder(ExecutorObserver):
            def __init__(self):
                self.started = []
                self.chunks = []
                self.finished = []

            def on_map_started(self, task_name, n_items, n_chunks):
                self.started.append((task_name, n_items, n_chunks))

            def on_chunk_finished(self, task_name, chunk_index, n_items, seconds):
                self.chunks.append((chunk_index, n_items))
                assert seconds >= 0.0

            def on_map_finished(self, task_name, n_items, seconds):
                self.finished.append((task_name, n_items))

        for executor in executors:
            recorder = Recorder()
            executor.observers.append(recorder)
            try:
                executor.map_batches(
                    square_batch, list(range(10)), chunk_size=3, task_name="obs"
                )
            finally:
                executor.observers.remove(recorder)
            assert recorder.started == [("obs", 10, 4)]
            assert sorted(recorder.chunks) == [(0, 3), (1, 3), (2, 3), (3, 1)]
            assert recorder.finished == [("obs", 10)]


# -- failure provenance -------------------------------------------------
class TestFailurePropagation:
    def test_error_names_task_chunk_and_items(self, executors):
        for executor in executors:
            with pytest.raises(ExecutorError) as caught:
                executor.map_batches(
                    explode_on_seven,
                    list(range(12)),
                    chunk_size=4,
                    task_name="demo",
                    label=lambda value: f"item-{value}",
                )
            error = caught.value
            assert error.task_name == "demo"
            assert error.chunk_index == 1  # 7 lives in [4, 5, 6, 7]
            assert "item-7" in error.item_labels
            assert "seven is right out" in str(error)
            assert isinstance(error.__cause__, ValueError)


# -- env-driven defaults & config plumbing ------------------------------
class TestDefaults:
    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_executor_name() == "thread"
        assert default_worker_count() == 3
        config = PipelineConfig()
        assert config.executor == "thread"
        assert config.workers == 3
        executor = make_executor()
        assert isinstance(executor, ThreadExecutor)
        assert executor.workers == 3

    def test_env_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_executor_name() == "serial"
        assert default_worker_count() >= 1

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "gpu")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            default_executor_name()
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_worker_count()

    def test_config_validates_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            PipelineConfig(executor="gpu")
        with pytest.raises(ValueError, match="workers"):
            PipelineConfig(workers=0)

    def test_make_executor_names(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
        for name in EXECUTOR_NAMES:
            # The queue backend cannot guess its spool directory.
            kwargs = {"queue_dir": tmp_path} if name == "queue" else {}
            executor = make_executor(name, workers=2, **kwargs)
            try:
                assert executor.name == name
            finally:
                executor.close()
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")
        with pytest.raises(ValueError, match="spool directory"):
            make_executor("queue", workers=2)

    def test_config_hash_ignores_executor_knobs(self):
        base = PipelineConfig(executor="serial", workers=1)
        parallel = dataclasses.replace(base, executor="process", workers=8)
        semantically_different = dataclasses.replace(base, iterations=1)
        assert config_hash(base) == config_hash(parallel)
        assert config_hash(base) != config_hash(semantically_different)


# -- property-based: cross-executor equivalence -------------------------
@given(
    items=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=60),
    chunk_size=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=25, deadline=None)
def test_property_map_batches_equivalent(executors, items, chunk_size):
    """All executors return identical, identically-ordered results."""
    outputs = [
        executor.map_batches(square_batch, items, chunk_size=chunk_size)
        for executor in executors
    ]
    assert outputs[0] == outputs[1] == outputs[2]
    assert outputs[0] == [value * value for value in items]


_WORDS = ("alpha", "beta", "gamma", "delta", "omega", "river", "stone")


@st.composite
def random_tables(draw) -> list[WebTable]:
    """Small random two-column tables with word-ish labels."""
    n_tables = draw(st.integers(min_value=1, max_value=3))
    tables = []
    for table_number in range(n_tables):
        n_rows = draw(st.integers(min_value=1, max_value=4))
        rows = []
        for __ in range(n_rows):
            words = draw(
                st.lists(st.sampled_from(_WORDS), min_size=1, max_size=3)
            )
            year = draw(st.integers(min_value=1900, max_value=2020))
            rows.append((" ".join(words), str(year)))
        tables.append(
            WebTable(f"rand-{table_number:03d}", ("name", "year"), rows)
        )
    return tables


@given(tables=random_tables(), n_real=st.integers(min_value=1, max_value=4))
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_stage_outputs_equivalent(
    executors, tiny_world, tables, n_real
):
    """Schema matching + clustering agree across executors on random corpora.

    Random junk tables are mixed with real Song tables so both the
    mapped and the unmapped code paths run.
    """
    real_ids = tiny_world.tables_of_class("Song")[:n_real]
    corpus = TableCorpus(
        tables + [tiny_world.corpus.get(table_id) for table_id in real_ids]
    )
    kb = tiny_world.knowledge_base

    mappings = []
    clusterings = []
    for executor in executors:
        matcher = SchemaMatcher(kb, executor=executor)
        mapping = matcher.match_corpus(corpus)
        mappings.append(
            [
                (
                    table_id,
                    table_mapping.class_name,
                    table_mapping.class_score,
                    table_mapping.label_column,
                    sorted(
                        (column, link.property_name, link.score)
                        for column, link in table_mapping.attributes.items()
                    ),
                )
                for table_id, table_mapping in sorted(mapping.by_table.items())
            ]
        )
        records = build_row_records(corpus, mapping, "Song")
        context = RowMetricContext.build(kb, "Song", records)
        similarity = RowSimilarity(
            make_row_metrics(PipelineConfig().row_metric_names, context),
            StaticWeightedAggregator(
                {
                    name: 1.0 / len(PipelineConfig().row_metric_names)
                    for name in PipelineConfig().row_metric_names
                },
                threshold=0.6,
            ),
        )
        clusterer = RowClusterer(similarity, executor=executor)
        clusterings.append(
            sorted(sorted(cluster.row_ids()) for cluster in clusterer.cluster(records))
        )
    assert mappings[0] == mappings[1] == mappings[2]
    assert clusterings[0] == clusterings[1] == clusterings[2]


@given(n_real=st.integers(min_value=2, max_value=6), seed=st.integers(0, 3))
@settings(max_examples=4, deadline=None)
def test_property_full_pipeline_equivalent(tiny_world, n_real, seed):
    """The full default pipeline is byte-identical across executors."""
    table_ids = tiny_world.tables_of_class("Song")[: n_real + 2]
    corpus = TableCorpus(
        [tiny_world.corpus.get(table_id) for table_id in table_ids]
    )
    blobs = []
    # The in-process backends; the distributed queue backend's
    # byte-equality is asserted in tests/test_queue_executor.py and the
    # golden matrix, where worker processes exist.
    for name in ("serial", "thread", "process"):
        session = RunSession(
            knowledge_base=tiny_world.knowledge_base,
            corpus=corpus,
            config=PipelineConfig(executor=name, workers=2, seed=seed),
        )
        blobs.append(session.run("Song", use_cache=False).canonical_json())
    assert blobs[0] == blobs[1] == blobs[2]
